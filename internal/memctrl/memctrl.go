// Package memctrl implements the on-chip memory controllers of Fig. 2 and
// Fig. 3. The conventional controller resolves DRAM indices after
// transaction scheduling and knows a single region; the heterogeneity-aware
// controller moves address translation ahead of scheduling, routes each
// access to the on-package or off-package region, schedules the two regions
// independently, and hosts the optional migration controller.
package memctrl

import (
	"fmt"

	"heteromem/internal/backoff"
	"heteromem/internal/check"
	"heteromem/internal/config"
	"heteromem/internal/core"
	"heteromem/internal/dram"
	"heteromem/internal/fault"
	"heteromem/internal/obs"
	"heteromem/internal/power"
	"heteromem/internal/sched"
	"heteromem/internal/scheme"
	"heteromem/internal/stats"
)

// Region identifies a memory region.
type Region int

// The two regions of the heterogeneous space.
const (
	OnPackage Region = iota
	OffPackage
)

// String names the region.
func (r Region) String() string {
	if r == OnPackage {
		return "on-package"
	}
	return "off-package"
}

// AccessResult reports one completed program access.
type AccessResult struct {
	Phys    uint64
	Machine uint64
	Region  Region
	Issue   int64 // cycle the core issued the access
	Done    int64 // cycle the data returned to the core
	Write   bool
}

// Latency returns the end-to-end latency in cycles.
func (a AccessResult) Latency() int64 { return a.Done - a.Issue }

// Config assembles a heterogeneity-aware controller.
type Config struct {
	Geometry  config.MemoryGeometry
	Latencies config.Latencies
	OffTiming config.DDR3Timing
	OnTiming  config.DDR3Timing
	Sched     sched.Config

	// Migration selects dynamic migration; nil means static mapping
	// (lowest addresses on-package).
	Migration *core.Options

	// Scheme selects the on-package capacity policy (internal/scheme).
	// The zero value is the paper's migration scheme and leaves every code
	// path byte-identical to pre-scheme builds. The cache kinds (alloy,
	// cachemode) require Migration == nil and Audit off; memcache requires
	// Migration and runs it over the memory share of the capacity.
	Scheme scheme.Spec

	// OSAssisted charges the OS epoch overhead (user/kernel switch) on
	// every epoch boundary instead of assuming hardware table updates.
	OSAssisted bool

	// Power meters traffic when non-nil.
	Power *power.Meter

	// Obs receives runtime metrics (counters, latency histograms) and,
	// when an event ring is enabled on it, the structured event trace.
	// nil disables observability at zero hot-path cost.
	Obs *obs.Registry

	// Audit attaches an invariant auditor (internal/check) to the
	// migration pipeline: the translation table is verified after every
	// completed swap step and at every quiescent point. Violations
	// surface as errors from Access and Err.
	Audit bool

	// CopyHop is a fixed interconnect latency added to the start of every
	// swap copy read leg. A multi-channel hub sets it so the copy traffic of
	// a sharded machine pays the hub-interconnect hop a cross-channel
	// transfer would traverse; zero (the single-controller default) leaves
	// the copy pipeline byte-identical to earlier builds.
	CopyHop int64

	// Fault configures deterministic fault injection (internal/fault):
	// DRAM device bursts, migration copy legs, and step completions can be
	// failed by rate or schedule, and the controller responds with bounded
	// retry, swap rollback, slot retirement, or degraded mode instead of
	// latching an error. The zero value disables injection entirely and
	// leaves every code path byte-identical to a fault-free build.
	Fault fault.Config
}

// Controller is the heterogeneity-aware on-chip memory controller.
type Controller struct {
	cfg Config

	onDev  *dram.Device
	offDev *dram.Device
	onSch  *sched.Scheduler
	offSch *sched.Scheduler

	mig *core.Migrator

	// The capacity policy (internal/scheme). policy is non-nil for every
	// scheme; cache is the block-grain engine and stays nil under the
	// default migration scheme, which keeps the pre-scheme code paths (and
	// their goldens) untouched. onCap is the machine-space boundary of the
	// on-package region: the full on-package capacity normally, the
	// memory-part size under memcache. migSlots is how many on-package
	// frames the migrator manages (all of them except under memcache).
	policy   scheme.Scheme
	cache    scheme.Cache
	onCap    uint64
	migSlots uint64

	// Sentinel metadata for scheme background traffic (see schemeJob).
	sjFill, sjWB, sjVictimRd, sjProbe, sjWasted *schemeJob

	// Freelists for the per-access and per-copy-leg objects. Access metadata
	// lives in the Request itself and leg metadata hangs off BulkJob.Meta
	// (intrusive), so the steady-state data path allocates nothing: completed
	// objects are recycled as soon as their completion callback returns.
	reqFree []*sched.Request
	jobFree []*sched.BulkJob
	legFree []*legMeta

	step *stepState // in-flight N-1/Live swap step

	stallUntil int64 // N design: execution halted until this cycle
	osPenalty  int64 // accumulated but not yet applied OS epoch cost
	now        int64 // the controller's clock: the latest program-access cycle

	// Per-region path-delay constants, precomputed once by initPathDelays
	// from cfg.Latencies; pathDelays sits on the per-access hot path.
	inOn, outOn, inOff, outOff int64

	onLat  stats.LatencyStat
	offLat stats.LatencyStat
	allLat stats.LatencyStat
	hist   stats.Histogram

	// DRAM access latency (queue + device service, no controller/wire
	// path): the quantity the paper's Section IV trace simulation reports.
	dramAll stats.LatencyStat
	dramOn  stats.LatencyStat
	dramOff stats.LatencyStat

	coreLatSum int64 // DRAM-core portion, for the effectiveness metric
	nDone      uint64
	queueSum   int64 // queue-wait portion of dramAll, for the series split

	// Span begin cycles for the background (N-1/Live) swap pipeline; the
	// matching span is recorded when the step/swap/rollback completes.
	swapBegin  int64
	stepBegin  int64
	rollBegin  int64
	swapMRU    uint64
	swapVictim uint64

	onResult func(AccessResult)
	reqID    uint64

	// onCopyDone, when set, observes every completed sub-block copy
	// (write leg finished); integrity tests use it to maintain a shadow
	// map of where every page's data lives.
	onCopyDone func(core.SubCopy)

	inst instruments    // observability instruments (all nil-safe)
	aud  *check.Auditor // invariant auditor; nil when auditing is off

	// firstErr latches the first asynchronous failure (audit violation or
	// swap-step error inside a scheduler callback, where no error can be
	// returned); Access and Err surface it.
	firstErr error

	// Fault-injection state (inj == nil means injection is off and none of
	// the fields below are ever touched).
	inj            *fault.Injector
	retry          backoff.Exponential // shared retry-delay policy (internal/backoff)
	faultRep       fault.Report        // disposition ledger (Account per fault)
	frameFaults    []int               // per on-package frame: cumulative faults
	retireQueue    []int               // slots awaiting quiescent retirement
	retireQueued   []bool              // per slot: queued or already retired
	undoQueue      []core.SubCopy      // remaining rollback copies, run one at a time
	stepAttempts   int                 // restarts consumed by the current step
	degradePending bool                // degrade once the in-flight swap quiesces
	degradedMode   bool                // migration permanently frozen
}

// instruments holds the controller's observability hooks. Every field is
// nil-safe: with Config.Obs == nil all pointers are nil and every record
// call degrades to a single pointer test.
type instruments struct {
	accOn, accOff *obs.Counter // program accesses per region
	pstalls       *obs.Counter // accesses redirected to Ω by a P bit
	swapStarts    *obs.Counter
	swapSteps     *obs.Counter
	swapDone      *obs.Counter
	copySubs      *obs.Counter // background sub-block copy legs completed
	copyBytes     *obs.Counter // background copy traffic in bytes
	stallCycles   *obs.Counter // N-design execution stall cycles
	osPenalties   *obs.Counter // OS-assisted epoch charges
	qlatOn        *obs.Histogram
	qlatOff       *obs.Histogram
	latOn         *obs.Histogram
	latOff        *obs.Histogram
	ring          *obs.EventRing
	spans         *obs.SpanTracer    // cycle-domain span trace
	series        *obs.SeriesSampler // per-epoch time series
	enabled       bool               // any instrument live (guards extra lookups)
}

type legMeta struct {
	step     *stepState
	sub      core.SubCopy
	isRead   bool
	dstOn    bool
	earliest int64
	attempts int // faulted attempts of this leg so far
}

type stepState struct {
	subsLeft  int
	undo      bool  // rollback mini-step (no table mutation on completion)
	aborted   bool  // swap aborted; in-flight legs of this step are stale
	completed []int // sub indices whose write leg landed (rollback needs them)
}

// schemeJob is the BulkJob.Meta sentinel distinguishing cache-scheme
// background traffic (fills, writebacks, victim reads, parallel probes,
// wasted predictor fetches) from migration copy legs. The five instances
// live on the controller; pointer identity selects the completion
// accounting and kind tags them in checkpoints.
type schemeJob struct {
	on   bool  // region whose bus the job occupies
	kind uint8 // checkpoint tag (sjKind*)
}

// Bulk-job kind tags in checkpoints: 0 is a migration copy leg.
const (
	sjKindFill uint8 = iota + 1
	sjKindWB
	sjKindVictimRd
	sjKindProbe
	sjKindWasted
)

// Request.Stage values for the cache schemes' multi-leg accesses. Stage 0
// is a plain data access (every request of the default scheme).
const (
	stageTagHit   uint8 = iota + 1 // serial tag read; data follows on-package
	stageTagMiss                   // serial tag/TAD read; data follows off-package
	stageMissData                  // off-package miss data; owes the fill at completion
)

// New builds the controller. onResult may be nil.
func New(cfg Config, onResult func(AccessResult)) (*Controller, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Geometry
	onDev, err := dram.New(dram.Geometry{
		Channels:   g.OnChannels,
		BanksPerCh: g.OnBanksPerCh,
		RowBytes:   g.RowSize,
		BurstBytes: g.BurstBytes,
	}, cfg.OnTiming)
	if err != nil {
		return nil, fmt.Errorf("memctrl: on-package device: %w", err)
	}
	offDev, err := dram.New(dram.Geometry{
		Channels:   g.OffChannels,
		BanksPerCh: g.OffBanksPerCh,
		RowBytes:   g.RowSize,
		BurstBytes: g.BurstBytes,
	}, cfg.OffTiming)
	if err != nil {
		return nil, fmt.Errorf("memctrl: off-package device: %w", err)
	}
	c := &Controller{
		cfg:      cfg,
		onDev:    onDev,
		offDev:   offDev,
		onResult: onResult,
	}
	c.initPathDelays()
	c.onSch, err = sched.New(onDev, cfg.Sched, c.requestDone, c.bulkDone)
	if err != nil {
		return nil, err
	}
	c.offSch, err = sched.New(offDev, cfg.Sched, c.requestDone, c.bulkDone)
	if err != nil {
		return nil, err
	}
	if err := cfg.Scheme.Validate(); err != nil {
		return nil, fmt.Errorf("memctrl: %w", err)
	}
	c.onCap = g.OnPackageCapacity
	c.migSlots = uint64(g.OnPackageSlots())
	switch cfg.Scheme.Kind {
	case scheme.KindAlloy, scheme.KindCacheMode:
		if cfg.Migration != nil {
			return nil, fmt.Errorf("memctrl: scheme %s manages the on-package capacity as a cache; migration does not apply", cfg.Scheme)
		}
		if cfg.Audit {
			return nil, fmt.Errorf("memctrl: scheme %s has no translation table to audit", cfg.Scheme)
		}
		if cfg.Scheme.Kind == scheme.KindAlloy {
			a, aerr := scheme.NewAlloy(cfg.Scheme, g.OnPackageCapacity, 0, g.BurstBytes)
			if aerr != nil {
				return nil, fmt.Errorf("memctrl: %w", aerr)
			}
			c.policy, c.cache = a, a
		} else {
			tc, terr := scheme.NewTagCache(cfg.Scheme, g.OnPackageCapacity, g.BurstBytes)
			if terr != nil {
				return nil, fmt.Errorf("memctrl: %w", terr)
			}
			c.policy, c.cache = tc, tc
		}
	case scheme.KindMemCache:
		if cfg.Migration == nil {
			return nil, fmt.Errorf("memctrl: scheme %s runs its memory part under migration; Migration options are required", cfg.Scheme)
		}
		mc, merr := scheme.NewMemCache(cfg.Scheme, g.OnPackageCapacity, g.MacroPageSize, g.BurstBytes)
		if merr != nil {
			return nil, fmt.Errorf("memctrl: %w", merr)
		}
		c.policy, c.cache = mc, mc
		c.onCap = mc.MemBytes()
		c.migSlots = mc.MemBytes() / g.MacroPageSize
	}
	if c.cache != nil {
		c.sjFill = &schemeJob{on: true, kind: sjKindFill}
		c.sjWB = &schemeJob{on: false, kind: sjKindWB}
		c.sjVictimRd = &schemeJob{on: true, kind: sjKindVictimRd}
		c.sjProbe = &schemeJob{on: true, kind: sjKindProbe}
		c.sjWasted = &schemeJob{on: false, kind: sjKindWasted}
	}
	if cfg.Migration != nil {
		opt := *cfg.Migration
		opt.Slots = c.migSlots
		opt.TotalPages = g.TotalPages()
		opt.PageSize = g.MacroPageSize
		opt.SubBlockSize = g.SubBlockSize
		c.mig, err = core.NewMigrator(opt)
		if err != nil {
			return nil, err
		}
		if cfg.Audit {
			c.aud = check.New(c.mig.Table(), c.mig.Design())
		}
	}
	if c.policy == nil {
		c.policy = &scheme.Migrate{Mig: c.mig}
	}
	c.inj, err = fault.New(cfg.Fault)
	if err != nil {
		return nil, fmt.Errorf("memctrl: %w", err)
	}
	c.retry = c.inj.BackoffPolicy()
	if c.inj != nil {
		c.frameFaults = make([]int, g.OnPackageSlots())
		c.retireQueued = make([]bool, g.OnPackageSlots())
		hook := func(a uint64, write bool, at int64) bool {
			return c.inj.Fault(fault.PointDevice)
		}
		c.onDev.SetFaultHook(hook)
		c.offDev.SetFaultHook(hook)
		c.onSch.SetFaultHandler(func(r *sched.Request) (bool, int64) {
			return c.deviceFault(r, OnPackage)
		})
		c.offSch.SetFaultHandler(func(r *sched.Request) (bool, int64) {
			return c.deviceFault(r, OffPackage)
		})
	}
	if reg := cfg.Obs; reg != nil {
		lb := obs.DefaultLatencyBuckets()
		c.inst = instruments{
			accOn:       reg.Counter("memctrl.access.on"),
			accOff:      reg.Counter("memctrl.access.off"),
			pstalls:     reg.Counter("memctrl.pstall.redirects"),
			swapStarts:  reg.Counter("memctrl.swap.started"),
			swapSteps:   reg.Counter("memctrl.swap.steps"),
			swapDone:    reg.Counter("memctrl.swap.completed"),
			copySubs:    reg.Counter("memctrl.copy.sub_blocks"),
			copyBytes:   reg.Counter("memctrl.copy.bytes"),
			stallCycles: reg.Counter("memctrl.stall.cycles"),
			osPenalties: reg.Counter("memctrl.os.epoch_penalties"),
			qlatOn:      reg.Histogram("memctrl.qlat.on", lb),
			qlatOff:     reg.Histogram("memctrl.qlat.off", lb),
			latOn:       reg.Histogram("memctrl.lat.on", lb),
			latOff:      reg.Histogram("memctrl.lat.off", lb),
			ring:        reg.Events(),
			spans:       reg.Spans(),
			series:      reg.Series(),
			enabled:     true,
		}
		c.onSch.SetObs(reg.Counter("sched.on.aging_grants"), reg.Counter("sched.on.stolen_cycles"))
		c.offSch.SetObs(reg.Counter("sched.off.aging_grants"), reg.Counter("sched.off.stolen_cycles"))
	}
	return c, nil
}

// Err returns the first failure recorded inside a scheduler callback —
// an invariant-audit violation or a swap-step error — where no error
// could be returned directly. Check it after Flush.
func (c *Controller) Err() error { return c.firstErr }

// fail latches the first asynchronous failure.
func (c *Controller) fail(err error) {
	if c.firstErr == nil {
		c.firstErr = err
	}
}

// auditAt runs the invariant auditor at a swap-step boundary at the given
// cycle; quiescent selects the stricter no-swap-in-flight rules.
func (c *Controller) auditAt(cycle int64, quiescent bool) {
	if c.aud == nil {
		return
	}
	var err error
	var phase uint64
	if quiescent {
		err = c.aud.AuditQuiescent()
		phase = 1
	} else {
		err = c.aud.AuditStep()
	}
	c.inst.ring.Emit(cycle, obs.EvAudit, phase, 0, 0)
	if err != nil {
		c.fail(err)
	}
}

// Migrator exposes the migration controller (nil under static mapping).
func (c *Controller) Migrator() *core.Migrator { return c.mig }

// newRequest pops a zeroed request off the freelist (or allocates one while
// the pool warms up). The scheduler dequeues a request before invoking its
// completion callback, so recycling inside requestDone is safe.
func (c *Controller) newRequest() *sched.Request {
	if n := len(c.reqFree); n > 0 {
		r := c.reqFree[n-1]
		c.reqFree = c.reqFree[:n-1]
		*r = sched.Request{}
		return r
	}
	return new(sched.Request)
}

func (c *Controller) freeRequest(r *sched.Request) { c.reqFree = append(c.reqFree, r) }

// newBulkJob pops a zeroed bulk job off the freelist.
func (c *Controller) newBulkJob() *sched.BulkJob {
	if n := len(c.jobFree); n > 0 {
		j := c.jobFree[n-1]
		c.jobFree = c.jobFree[:n-1]
		*j = sched.BulkJob{}
		return j
	}
	return new(sched.BulkJob)
}

func (c *Controller) freeBulkJob(j *sched.BulkJob) {
	j.Meta = nil
	c.jobFree = append(c.jobFree, j)
}

// newLeg pops a leg-metadata record off the freelist; the caller overwrites
// every field.
func (c *Controller) newLeg() *legMeta {
	if n := len(c.legFree); n > 0 {
		m := c.legFree[n-1]
		c.legFree = c.legFree[:n-1]
		return m
	}
	return new(legMeta)
}

func (c *Controller) freeLeg(m *legMeta) { c.legFree = append(c.legFree, m) }

// regionLane maps a machine-region side to its trace lane.
func regionLane(on bool) obs.Lane {
	if on {
		return obs.LaneSchedOn
	}
	return obs.LaneSchedOff
}

// sampleSeries snapshots the cumulative pipeline counters into the
// per-epoch series. Called at every epoch boundary and once at flush
// (final=true); no-op when sampling is disabled.
func (c *Controller) sampleSeries(cycle int64, final bool) {
	if c.inst.series == nil {
		return
	}
	sample := obs.EpochSample{
		Cycle:       cycle,
		Final:       final,
		AccOn:       c.inst.accOn.Value(),
		AccOff:      c.inst.accOff.Value(),
		PStalls:     c.inst.pstalls.Value(),
		StallCycles: c.inst.stallCycles.Value(),
		OSPenalties: c.inst.osPenalties.Value(),
		DRAMLatSum:  c.dramAll.Sum(),
		DRAMLatN:    c.dramAll.Count(),
		QueueLatSum: c.queueSum,
	}
	if c.mig != nil {
		st := c.mig.Stats()
		sample.Epoch = st.Epochs
		sample.SwapsStarted = st.SwapsStarted
		sample.SwapsCompleted = st.SwapsCompleted
		sample.SwapsRolledBack = st.SwapsRolledBack
	}
	if rep := c.FaultReport(); rep != nil {
		sample.FaultsInjected = rep.Injected
		sample.FaultsRetried = rep.Retried
		sample.FaultsRetired = rep.Retired
		sample.FaultsDegraded = rep.Degraded
	}
	c.inst.series.Record(sample)
}

// Access processes one program access issued at cycle `now`.
func (c *Controller) Access(phys uint64, write bool, now int64) error {
	if c.firstErr != nil {
		return c.firstErr
	}
	if now > c.now {
		c.now = now
	}
	c.onSch.Advance(c.now)
	c.offSch.Advance(c.now)

	if c.cache != nil && c.mig == nil {
		// Pure cache scheme (alloy, cachemode): no migration engine, no
		// stalls, no OS penalties — the capacity policy is the cache
		// engine plus the request chain cacheRoute submits.
		c.cacheRoute(phys, phys, write, now)
		return nil
	}

	issue := now
	if c.stallUntil > issue {
		issue = c.stallUntil // N design halts execution during a swap
	}
	if c.osPenalty > 0 {
		issue += c.osPenalty
		c.osPenalty = 0
	}
	if c.inj != nil {
		// Run deferred fault responses (slot retirement, pending degrade)
		// before translating: they may remap the page being accessed.
		c.serviceQuiescent(issue)
	}

	machine, onPkg := c.translate(phys)
	region := OffPackage
	if onPkg {
		region = OnPackage
		c.inst.accOn.Inc()
	} else if c.cache == nil {
		// Under memcache the cache part still gets a say; cacheRoute
		// counts the access once the hit side is known.
		c.inst.accOff.Inc()
	}

	if c.mig != nil {
		if c.inst.enabled {
			// A set P bit forces this page's RAM-direction translation to
			// Ω while its new off-package home is still being written —
			// the access "stalls" on the slow region it would otherwise
			// have left behind.
			if page := phys / c.cfg.Geometry.MacroPageSize; c.mig.Table().Pending(page) {
				c.inst.pstalls.Inc()
				c.inst.ring.Emit(now, obs.EvPStall, page, 0, 0)
				c.inst.spans.Mark(obs.LaneMigrator, obs.MarkPStall, now, page, 0, 0)
			}
		}
		c.mig.OnAccess(phys, onPkg)
		epochsBefore := c.mig.Epochs()
		subs := c.mig.EpochTick()
		if epochs := c.mig.Epochs(); epochs != epochsBefore {
			c.inst.ring.Emit(now, obs.EvEpoch, epochs, 0, 0)
			c.inst.spans.Mark(obs.LaneMigrator, obs.MarkEpoch, now, epochs, 0, 0)
			c.sampleSeries(now, false)
			if c.cfg.OSAssisted {
				// The OS periodical routine updates the software translation
				// table every epoch; its user/kernel switch stalls the core
				// (Section III-B: ~127 cycles, Liedtke SOSP'93).
				c.osPenalty += c.cfg.Latencies.OSEpochOverhead
				c.inst.osPenalties.Inc()
				c.inst.ring.Emit(now, obs.EvOSPenalty, uint64(c.cfg.Latencies.OSEpochOverhead), 0, 0)
			}
		}
		if subs != nil {
			if err := c.beginSwap(subs, issue); err != nil {
				return err
			}
			if c.stallUntil > issue {
				issue = c.stallUntil
			}
		}
	}

	if c.cache != nil && !onPkg {
		// memcache: the page lives outside the memory part, so the cache
		// part gets a shot at it before the access pays the off-package trip.
		c.cacheRoute(phys, machine, write, issue)
		return nil
	}

	lookup := int64(0)
	if c.mig != nil {
		lookup = c.cfg.Latencies.TranslationLookup
	}
	inb, _ := c.pathDelays(region)
	arrive := issue + lookup + inb

	c.reqID++
	req := c.newRequest()
	req.ID = c.reqID
	req.Arrive = arrive
	req.Write = write
	req.Phys = phys
	req.Machine = machine
	req.Issue = issue
	req.OnPkg = region == OnPackage
	if region == OnPackage {
		req.Addr = machine
		c.onSch.Submit(req, arrive)
	} else {
		req.Addr = machine - c.onCap
		c.offSch.Submit(req, arrive)
	}
	return nil
}

// schemeOffAddr maps a machine address to the off-package device space under
// a cache scheme. The pure caches back the whole physical space off-package;
// memcache stacks the off region above its memory part like the default
// scheme stacks it above the full capacity.
func (c *Controller) schemeOffAddr(machine uint64) uint64 {
	if c.mig != nil {
		return machine - c.onCap
	}
	return machine
}

// cacheRoute runs one access through the cache engine and submits the
// request chain it calls for. machine is the access's off-package home
// (equal to phys for the pure cache schemes); issue already includes any
// stall or OS penalty the caller charged.
func (c *Controller) cacheRoute(phys, machine uint64, write bool, issue int64) {
	res := c.cache.Lookup(phys, write)
	if res.Hit {
		c.inst.accOn.Inc()
	} else {
		c.inst.accOff.Inc()
	}

	// Background traffic the lookup owes. Each job occupies its region's bus
	// like a migration copy leg: scheduled into idle gaps, aged if starved.
	blk := c.cache.BlockBytes()
	if res.WB {
		if res.VictimRead {
			// The tag probe returned no data (cachemode), so the dirty
			// victim must be read before its off-package write.
			c.submitSchemeJob(c.sjVictimRd, res.Slot, blk, issue)
		}
		c.submitSchemeJob(c.sjWB, res.WBAddr, blk, issue)
	}
	if res.WastedOff {
		// Mispredicted hit: the off-package fetch was launched anyway and
		// burns off-package bandwidth.
		c.submitSchemeJob(c.sjWasted, machine, blk, issue)
	}
	if res.Probe && res.Parallel {
		// Predicted miss: the probe burst overlaps the off-package fetch
		// instead of gating it, so it rides the background queue too.
		c.submitSchemeJob(c.sjProbe, res.Slot, blk, issue)
	}

	lookup := int64(0)
	if c.mig != nil {
		lookup = c.cfg.Latencies.TranslationLookup
	}

	c.reqID++
	r := c.newRequest()
	r.ID = c.reqID
	r.Write = write
	r.Phys = phys
	r.Issue = issue
	switch {
	case res.Hit && !res.Probe:
		// One on-package burst (alloy TAD hit, or cachemode with a warm
		// SRAM tag buffer).
		r.OnPkg = true
		r.Machine = res.Slot
		r.Addr = res.Slot
		inb, _ := c.pathDelays(OnPackage)
		r.Arrive = issue + lookup + inb
		c.onSch.Submit(r, r.Arrive)
	case res.Hit:
		// Serial in-DRAM tag read, then the data burst: ~2x one on-package
		// access, the L4 hit cost of the paper's Section II strawman.
		r.OnPkg = true
		r.Machine = res.Slot
		r.Addr = res.Slot
		r.Stage = stageTagHit
		r.Aux = res.Slot
		inb, _ := c.pathDelays(OnPackage)
		r.Arrive = issue + lookup + inb
		c.onSch.Submit(r, r.Arrive)
	case res.Probe && !res.Parallel:
		// Serial miss probe: the on-package tag/TAD read must answer before
		// the off-package fetch can launch.
		r.OnPkg = true
		r.Machine = machine
		r.Addr = res.Slot
		r.Stage = stageTagMiss
		r.Aux = res.Slot
		inb, _ := c.pathDelays(OnPackage)
		r.Arrive = issue + lookup + inb
		c.onSch.Submit(r, r.Arrive)
	default:
		// Straight off-package fetch (probe skipped or overlapped); the
		// fill into the cache slot is owed when the data lands.
		r.OnPkg = false
		r.Machine = machine
		r.Addr = c.schemeOffAddr(machine)
		r.Stage = stageMissData
		r.Aux = res.Slot
		inb, _ := c.pathDelays(OffPackage)
		r.Arrive = issue + lookup + inb
		c.offSch.Submit(r, r.Arrive)
	}
}

// submitSchemeJob queues one block of scheme background traffic on the
// region's bus. The address only picks the channel; the sentinel metadata
// selects the completion accounting.
func (c *Controller) submitSchemeJob(sj *schemeJob, addr, bytes uint64, earliest int64) {
	j := c.newBulkJob()
	j.Tag = addr
	j.Duration = c.subDuration(sj.on, bytes, false)
	j.Earliest = earliest
	j.Meta = sj
	c.submitBulk(sj.on, addr, j)
}

// schemeJobDone retires one scheme background job: meter its energy and
// recycle it. Fills and writebacks are block copies between the regions;
// probe and wasted-fetch bursts are plain accesses on their region.
func (c *Controller) schemeJobDone(sj *schemeJob, j *sched.BulkJob) {
	if c.cfg.Power != nil {
		blk := c.cache.BlockBytes()
		switch sj.kind {
		case sjKindFill:
			c.cfg.Power.Copy(false, true, blk, false)
		case sjKindWB:
			c.cfg.Power.Copy(true, false, blk, false)
		case sjKindVictimRd:
			// Bus-occupancy only: the paired writeback's Copy meters the
			// on-package read and off-package write energy.
		case sjKindProbe, sjKindWasted:
			c.cfg.Power.Access(sj.on, blk)
		}
	}
	c.freeBulkJob(j)
}

// translate maps a physical address to (machine address, onPackage), using
// the migration controller when present and the static MSB split otherwise.
func (c *Controller) translate(phys uint64) (uint64, bool) {
	if c.mig != nil {
		return c.mig.Translate(phys)
	}
	return phys, phys < c.cfg.Geometry.OnPackageCapacity
}

// pathDelays returns the fixed inbound and outbound path components for a
// region: controller processing and core link inbound; package pins, PCB or
// interposer wiring split across both directions.
func (c *Controller) pathDelays(r Region) (inbound, outbound int64) {
	if r == OnPackage {
		return c.inOn, c.outOn
	}
	return c.inOff, c.outOff
}

// initPathDelays precomputes the per-region path constants pathDelays
// serves; it runs once at construction, after cfg.Latencies is final.
func (c *Controller) initPathDelays() {
	l := c.cfg.Latencies
	c.inOn = l.MemCtrlProcessing + l.CtrlToCoreOneWay + l.InterposerOneWay + l.IntraPackageRT/2
	c.outOn = l.CtrlToCoreOneWay + l.InterposerOneWay + (l.IntraPackageRT - l.IntraPackageRT/2)
	c.inOff = l.MemCtrlProcessing + l.CtrlToCoreOneWay + l.PackagePinOneWay + l.PCBWireRoundTrip/2
	c.outOff = l.CtrlToCoreOneWay + l.PackagePinOneWay + (l.PCBWireRoundTrip - l.PCBWireRoundTrip/2)
}

// requestDone finalizes a program access. The scheduler has already dequeued
// the request, so it is recycled into the pool on the way out. Cache-scheme
// requests with a non-zero Stage are intermediate legs: they chain the next
// leg (re-submitting mid-drain is safe — sched re-reads its queues at every
// drain iteration) and only the final leg reaches the latency accounting.
func (c *Controller) requestDone(r *sched.Request) {
	switch r.Stage {
	case stageTagHit:
		// Serial tag read answered on-package; the data burst follows in
		// the same region, back-to-back (the inbound path is already paid).
		if c.cfg.Power != nil {
			c.cfg.Power.Access(true, c.cfg.Geometry.BurstBytes)
		}
		r.Stage = 0
		r.Attempts = 0
		r.Addr = r.Aux
		r.Machine = r.Aux
		r.Arrive = r.Done
		r.Start, r.Done, r.CoreLat = 0, 0, 0
		c.onSch.Submit(r, c.now)
		return
	case stageTagMiss:
		// Serial probe confirmed the miss; fetch from off-package.
		if c.cfg.Power != nil {
			c.cfg.Power.Access(true, c.cfg.Geometry.BurstBytes)
		}
		inb, _ := c.pathDelays(OffPackage)
		r.Stage = stageMissData
		r.Attempts = 0
		r.OnPkg = false
		r.Addr = c.schemeOffAddr(r.Machine)
		r.Arrive = r.Done + inb
		r.Start, r.Done, r.CoreLat = 0, 0, 0
		c.offSch.Submit(r, c.now)
		return
	case stageMissData:
		// Miss data landed; the fill into the cache slot rides the
		// background queue. Fall through to the normal accounting: this is
		// the leg that returned data to the core.
		c.submitSchemeJob(c.sjFill, r.Aux, c.cache.BlockBytes(), r.Done)
		r.Stage = 0
	}
	region := OffPackage
	if r.OnPkg {
		region = OnPackage
	}
	_, outb := c.pathDelays(region)
	done := r.Done + outb
	lat := done - r.Issue
	c.allLat.Add(lat)
	c.hist.Add(lat)
	dram := r.Done - r.Arrive
	c.dramAll.Add(dram)
	c.queueSum += r.Start - r.Arrive
	if r.OnPkg {
		c.onLat.Add(lat)
		c.dramOn.Add(dram)
		c.inst.latOn.Observe(lat)
		c.inst.qlatOn.Observe(r.Start - r.Arrive)
	} else {
		c.offLat.Add(lat)
		c.dramOff.Add(dram)
		c.inst.latOff.Observe(lat)
		c.inst.qlatOff.Observe(r.Start - r.Arrive)
	}
	c.coreLatSum += r.CoreLat
	c.nDone++
	if c.cfg.Power != nil {
		c.cfg.Power.Access(r.OnPkg, c.cfg.Geometry.BurstBytes)
	}
	if c.onResult != nil {
		c.onResult(AccessResult{
			Phys: r.Phys, Machine: r.Machine, Region: region,
			Issue: r.Issue, Done: done, Write: r.Write,
		})
	}
	c.freeRequest(r)
}

// subDuration is the bus occupancy of one sub-block copy leg on a region:
// the burst transfers plus the row-activation cost amortized over the rows
// the sub-block spans (a page copy walks rows sequentially, so each
// activation covers a whole row of bursts and overlaps the pipeline).
func (c *Controller) subDuration(on bool, bytes uint64, exchange bool) int64 {
	t := c.cfg.OffTiming
	if on {
		t = c.cfg.OnTiming
	}
	bursts := int64(bytes / c.cfg.Geometry.BurstBytes)
	activate := t.TRCD * int64(bytes) / int64(c.cfg.Geometry.RowSize)
	if activate == 0 {
		activate = t.TRCD // a sub-block smaller than a row still opens one
	}
	d := activate + bursts*t.TBurst
	if exchange {
		d += bursts * t.TBurst // data flows both ways through the line buffer
	}
	return d
}

// regionOfMachine reports whether a machine byte address is on-package from
// the migrator's point of view: below the full capacity normally, below the
// memory-part boundary under memcache.
func (c *Controller) regionOfMachine(machine uint64) bool {
	return machine < c.onCap
}

// beginSwap starts executing a swap plan. The N design runs it to
// completion immediately (execution is halted anyway); the N-1 designs
// enqueue the first step's legs as background traffic.
func (c *Controller) beginSwap(subs []core.SubCopy, now int64) error {
	c.inst.swapStarts.Inc()
	if mru, victim, _, _, ok := c.mig.CurrentPlan(); ok {
		c.inst.ring.Emit(now, obs.EvSwapStart, mru, uint64(victim), 0)
		c.swapMRU, c.swapVictim = mru, uint64(victim)
	}
	if c.mig.Design() == core.DesignN {
		return c.runStalledSwap(subs, now)
	}
	c.swapBegin, c.stepBegin = now, now
	c.stepAttempts = 0
	c.step = &stepState{subsLeft: len(subs)}
	for _, sc := range subs {
		c.enqueueReadLeg(sc, now)
	}
	return nil
}

// enqueueReadLeg submits the source-side transfer of one sub-block.
func (c *Controller) enqueueReadLeg(sc core.SubCopy, earliest int64) {
	srcOn := c.regionOfMachine(sc.Src)
	dstOn := c.regionOfMachine(sc.Dst)
	job := c.newBulkJob()
	job.Tag = uint64(sc.SubIndex)
	job.Duration = c.subDuration(srcOn, sc.Bytes, sc.Exchange)
	job.Earliest = earliest + c.cfg.CopyHop
	meta := c.newLeg()
	*meta = legMeta{step: c.step, sub: sc, isRead: true, dstOn: dstOn}
	job.Meta = meta
	c.submitBulk(srcOn, sc.Src, job)
}

// submitBulk places a copy leg on the channel its macro page belongs to:
// DIMM space is interleaved at page granularity, so one page copy draws one
// channel's bandwidth — the paper's 374 us for a 4 MB page over DDR3-1333
// is exactly that single-channel figure.
func (c *Controller) submitBulk(on bool, machine uint64, job *sched.BulkJob) {
	page := machine / c.cfg.Geometry.MacroPageSize
	if on {
		c.onSch.SubmitBulk(int(page%uint64(c.cfg.Geometry.OnChannels)), job, c.now)
		return
	}
	c.offSch.SubmitBulk(int(page%uint64(c.cfg.Geometry.OffChannels)), job, c.now)
}

// bulkDone chains read leg -> write leg -> sub completion -> step/plan
// completion for background swaps. With fault injection on, every leg
// completion is probed; a faulted leg is retried, accepted, or escalates
// into a rollback per copyFaultVerdict.
func (c *Controller) bulkDone(j *sched.BulkJob) {
	if sj, ok := j.Meta.(*schemeJob); ok {
		c.schemeJobDone(sj, j)
		return
	}
	meta, _ := j.Meta.(*legMeta)
	if meta == nil {
		return
	}
	st := meta.step
	if st != nil && st.aborted {
		// Stale leg of an aborted (rolled-back or restarted) step.
		c.freeLeg(meta)
		c.freeBulkJob(j)
		return
	}
	if c.inj != nil && c.inj.Fault(fault.PointCopy) {
		c.inst.ring.Emit(j.Done, obs.EvFault, uint64(fault.PointCopy), meta.sub.Dst, uint64(meta.attempts))
		c.inst.spans.Mark(obs.LaneFault, obs.MarkFault, j.Done, uint64(fault.PointCopy), meta.sub.Dst, uint64(meta.attempts))
		switch c.copyFaultVerdict(!meta.isRead, meta.sub.Dst, meta.dstOn, meta.attempts, st.undo, j.Done) {
		case verdictRetry:
			c.retryLeg(meta, j)
			return
		case verdictAbort:
			done := j.Done
			c.freeLeg(meta)
			c.freeBulkJob(j)
			if st.undo {
				c.abandonUndo(done)
			} else {
				c.abortSwap(st, done)
			}
			return
		case verdictAccept:
			// fall through: the leg is treated as delivered
		}
	}
	if meta.isRead {
		// The leg span covers the whole leg lifetime [Earliest, Done] —
		// queueing plus bus time, possibly split across stolen quanta.
		c.inst.spans.Span(regionLane(c.regionOfMachine(meta.sub.Src)), obs.SpanCopyRead,
			j.Earliest, j.Done, meta.sub.Src/c.cfg.Geometry.MacroPageSize, uint64(meta.sub.SubIndex), meta.sub.Bytes)
		write := c.newBulkJob()
		write.Tag = j.Tag
		write.Duration = c.subDuration(meta.dstOn, meta.sub.Bytes, meta.sub.Exchange)
		write.Earliest = j.Done
		// The read leg's metadata is reused for the write leg: same step and
		// sub-block, direction flipped, faulted-attempt count restarted.
		meta.isRead = false
		meta.attempts = 0
		write.Meta = meta
		dstOn, dst := meta.dstOn, meta.sub.Dst
		c.freeBulkJob(j)
		c.submitBulk(dstOn, dst, write)
		return
	}
	// Write leg finished: the sub-block now lives at its destination.
	sub := meta.sub
	dstOn := meta.dstOn
	done, earliest := j.Done, j.Earliest
	c.freeLeg(meta)
	c.freeBulkJob(j)
	c.inst.spans.Span(regionLane(dstOn), obs.SpanCopyWrite,
		earliest, done, sub.Dst/c.cfg.Geometry.MacroPageSize, uint64(sub.SubIndex), sub.Bytes)
	c.inst.copySubs.Inc()
	c.inst.copyBytes.Add(sub.Bytes)
	if c.cfg.Power != nil {
		c.cfg.Power.Copy(c.regionOfMachine(sub.Src), dstOn, sub.Bytes, sub.Exchange)
	}
	if st.undo {
		// Rollback mini-step: no table mutation, no copy-done notification
		// (the data is moving back where the shadow map already has it).
		st.subsLeft--
		c.startNextUndo(done)
		return
	}
	if c.onCopyDone != nil {
		c.onCopyDone(sub)
	}
	c.mig.SubDone(sub.SubIndex)
	if c.inst.ring != nil {
		pageSize := c.cfg.Geometry.MacroPageSize
		c.inst.ring.Emit(done, obs.EvCopyDone, sub.Src/pageSize, sub.Dst/pageSize, sub.Bytes)
	}
	st.completed = append(st.completed, sub.SubIndex)
	st.subsLeft--
	if st.subsLeft > 0 {
		return
	}
	if c.inj != nil && c.inj.Fault(fault.PointBulk) && c.stepFault(done) {
		return
	}
	mru, _, stepIdx, _, _ := c.mig.CurrentPlan()
	next, swapDone, err := c.mig.StepDone()
	if err != nil {
		c.fail(err)
		c.step = nil
		return
	}
	c.inst.swapSteps.Inc()
	c.inst.ring.Emit(done, obs.EvSwapStep, mru, uint64(stepIdx), 0)
	c.inst.spans.Span(obs.LaneMigrator, obs.SpanStep, c.stepBegin, done, mru, uint64(stepIdx), 0)
	c.stepBegin = done
	if swapDone {
		c.inst.swapDone.Inc()
		c.inst.ring.Emit(done, obs.EvSwapDone, mru, uint64(stepIdx+1), 0)
		c.inst.spans.Span(obs.LaneMigrator, obs.SpanSwap, c.swapBegin, done, c.swapMRU, c.swapVictim, uint64(stepIdx+1))
		c.auditAt(done, true)
		c.step = nil
		c.serviceQuiescent(done)
		return
	}
	c.auditAt(done, false)
	c.stepAttempts = 0
	c.step = &stepState{subsLeft: len(next)}
	for _, sc := range next {
		c.enqueueReadLeg(sc, done)
	}
}

// runStalledSwap executes an N-design swap synchronously: all copy traffic
// is drained immediately and program execution resumes only after the last
// byte moved (the paper: "it will halt the execution"). Fault probes run
// inline: a faulted leg re-reserves its buses after the backoff, a faulted
// step completion re-runs the step's copies, and retry exhaustion rolls the
// swap back synchronously.
func (c *Controller) runStalledSwap(subs []core.SubCopy, now int64) error {
	start := now
	if c.stallUntil > start {
		start = c.stallUntil
	}
	swapStart := start
	c.stepAttempts = 0
	for {
		stepBegin := start
		c.step = &stepState{subsLeft: len(subs)}
		var completed []int
		var last int64
		for _, sc := range subs {
			srcOn := c.regionOfMachine(sc.Src)
			dstOn := c.regionOfMachine(sc.Dst)
			// Synchronous execution: reserve the buses directly in order,
			// each page copy on its page's channel.
			rd := c.subDuration(srcOn, sc.Bytes, sc.Exchange)
			wd := c.subDuration(dstOn, sc.Bytes, sc.Exchange)
			legStart := start + c.cfg.CopyHop
			attempts := 0
			var readDone, writeDone int64
		legLoop:
			for {
				readDone = c.reserve(srcOn, sc.Src, legStart, rd)
				writeDone = c.reserve(dstOn, sc.Dst, readDone, wd)
				if c.inj == nil || !c.inj.Fault(fault.PointCopy) {
					break
				}
				c.inst.ring.Emit(writeDone, obs.EvFault, uint64(fault.PointCopy), sc.Dst, uint64(attempts))
				c.inst.spans.Mark(obs.LaneFault, obs.MarkFault, writeDone, uint64(fault.PointCopy), sc.Dst, uint64(attempts))
				switch c.copyFaultVerdict(true, sc.Dst, dstOn, attempts, false, writeDone) {
				case verdictAbort:
					c.step = nil
					return c.stalledRollback(completed, writeDone)
				case verdictAccept:
					break legLoop
				case verdictRetry:
					attempts++
					legStart = writeDone + c.retry.Delay(attempts)
					c.inst.ring.Emit(writeDone, obs.EvFaultRetry, uint64(fault.PointCopy), uint64(attempts), uint64(legStart-writeDone))
					c.inst.spans.Span(obs.LaneFault, obs.SpanBackoff, writeDone, legStart, uint64(fault.PointCopy), uint64(attempts), 0)
				}
			}
			pageSize := c.cfg.Geometry.MacroPageSize
			c.inst.spans.Span(regionLane(srcOn), obs.SpanCopyRead, legStart, readDone, sc.Src/pageSize, uint64(sc.SubIndex), sc.Bytes)
			c.inst.spans.Span(regionLane(dstOn), obs.SpanCopyWrite, readDone, writeDone, sc.Dst/pageSize, uint64(sc.SubIndex), sc.Bytes)
			if c.cfg.Power != nil {
				c.cfg.Power.Copy(srcOn, dstOn, sc.Bytes, sc.Exchange)
			}
			if c.onCopyDone != nil {
				c.onCopyDone(sc)
			}
			c.inst.copySubs.Inc()
			c.inst.copyBytes.Add(sc.Bytes)
			completed = append(completed, sc.SubIndex)
			if writeDone > last {
				last = writeDone
			}
		}
		c.step = nil
		start = last
		if c.inj != nil && c.inj.Fault(fault.PointBulk) {
			c.inst.ring.Emit(last, obs.EvFault, uint64(fault.PointBulk), 0, uint64(c.stepAttempts))
			c.inst.spans.Mark(obs.LaneFault, obs.MarkFault, last, uint64(fault.PointBulk), 0, uint64(c.stepAttempts))
			redo, abort := c.stepFaultVerdict(last)
			if abort {
				return c.stalledRollback(completed, last)
			}
			if redo {
				continue // re-run the same step's copies
			}
		}
		mru, _, stepIdx, _, _ := c.mig.CurrentPlan()
		next, done, err := c.mig.StepDone()
		if err != nil {
			return err
		}
		c.inst.swapSteps.Inc()
		c.inst.ring.Emit(last, obs.EvSwapStep, mru, uint64(stepIdx), 0)
		c.inst.spans.Span(obs.LaneMigrator, obs.SpanStep, stepBegin, last, mru, uint64(stepIdx), 0)
		if done {
			c.inst.swapDone.Inc()
			c.inst.ring.Emit(last, obs.EvSwapDone, mru, uint64(stepIdx+1), 0)
			c.inst.spans.Span(obs.LaneMigrator, obs.SpanSwap, swapStart, last, c.swapMRU, c.swapVictim, uint64(stepIdx+1))
			c.auditAt(last, true)
			break
		}
		c.auditAt(last, false)
		if err := c.firstErr; err != nil {
			return err
		}
		c.stepAttempts = 0
		subs = next
	}
	if err := c.firstErr; err != nil {
		return err
	}
	if stalled := start - now; stalled > 0 {
		c.inst.stallCycles.Add(uint64(stalled))
		c.inst.ring.Emit(now, obs.EvStall, uint64(stalled), 0, 0)
		c.inst.spans.Span(obs.LaneMigrator, obs.SpanStall, now, start, uint64(stalled), 0, 0)
	}
	c.stallUntil = start
	c.serviceQuiescent(start)
	return c.firstErr
}

// Flush drains both regions and returns the final cycle. Draining one
// region can spawn follow-on copy legs in the other (read -> write -> next
// step), so the flush iterates until both are empty.
func (c *Controller) Flush() int64 {
	c.now = int64(1) << 62
	var last int64
	for i := 0; i < 1<<20; i++ {
		a := c.onSch.Flush()
		b := c.offSch.Flush()
		if a > last {
			last = a
		}
		if b > last {
			last = b
		}
		if c.onSch.QueueLen()+c.onSch.BulkBacklog()+c.offSch.QueueLen()+c.offSch.BulkBacklog() == 0 &&
			c.step == nil {
			break
		}
	}
	if c.inj != nil {
		// Fault responses deferred to a quiescent point (slot retirements,
		// a pending degrade) run now; retirement evacuation copies extend
		// the bus schedules past the drained horizon.
		c.serviceQuiescent(last)
		for ch := 0; ch < c.cfg.Geometry.OnChannels; ch++ {
			if f := c.onDev.BusFree(ch); f > last {
				last = f
			}
		}
		for ch := 0; ch < c.cfg.Geometry.OffChannels; ch++ {
			if f := c.offDev.BusFree(ch); f > last {
				last = f
			}
		}
	}
	// The drained controller must be at a quiescent point: no swap in
	// flight and the translation table fully consistent.
	if c.mig != nil && c.mig.SwapInFlight() && c.firstErr == nil {
		c.fail(fmt.Errorf("memctrl: flush finished with a swap still in flight"))
	}
	c.auditAt(last, true)
	c.checkFaultLedger()
	// The flush-time sample closes the series: its cumulative counters equal
	// the final metrics snapshot, so the two can be reconciled.
	c.sampleSeries(last, true)
	return last
}

// PublishObs exports snapshot-time gauges — DRAM device statistics,
// migration engine statistics, and translation-table P-bit transition
// counts — into the configured registry. Call it once after Flush, before
// taking the registry snapshot; counters and histograms recorded on the
// hot path are already in the registry.
func (c *Controller) PublishObs() {
	reg := c.cfg.Obs
	if reg == nil {
		return
	}
	c.onDev.PublishObs(reg, "dram.on")
	c.offDev.PublishObs(reg, "dram.off")
	onServed, onBulk, _ := c.onSch.Stats()
	offServed, offBulk, _ := c.offSch.Stats()
	reg.Gauge("sched.on.served").Set(int64(onServed))
	reg.Gauge("sched.on.bulk_served").Set(int64(onBulk))
	reg.Gauge("sched.off.served").Set(int64(offServed))
	reg.Gauge("sched.off.bulk_served").Set(int64(offBulk))
	if rep := c.FaultReport(); rep != nil {
		reg.Gauge("fault.injected").Set(int64(rep.Injected))
		reg.Gauge("fault.device").Set(int64(rep.DeviceFaults))
		reg.Gauge("fault.copy").Set(int64(rep.CopyFaults))
		reg.Gauge("fault.bulk").Set(int64(rep.BulkFaults))
		reg.Gauge("fault.retried").Set(int64(rep.Retried))
		reg.Gauge("fault.rolled_back").Set(int64(rep.RolledBack))
		reg.Gauge("fault.retired").Set(int64(rep.Retired))
		reg.Gauge("fault.degraded").Set(int64(rep.Degraded))
		reg.Gauge("fault.swaps_rolled_back").Set(int64(rep.SwapsRolledBack))
		reg.Gauge("fault.slots_retired").Set(int64(rep.SlotsRetired))
		degraded := int64(0)
		if rep.DegradedMode {
			degraded = 1
		}
		reg.Gauge("fault.degraded_mode").Set(degraded)
	}
	if c.mig == nil {
		return
	}
	st := c.mig.Stats()
	reg.Gauge("mig.epochs").Set(int64(st.Epochs))
	reg.Gauge("mig.swaps_started").Set(int64(st.SwapsStarted))
	reg.Gauge("mig.swaps_completed").Set(int64(st.SwapsCompleted))
	reg.Gauge("mig.triggers_blocked").Set(int64(st.TriggersBlocked))
	reg.Gauge("mig.triggers_cold").Set(int64(st.TriggersCold))
	reg.Gauge("mig.pages_copied").Set(int64(st.PagesCopied))
	reg.Gauge("mig.bytes_copied").Set(int64(st.BytesCopied))
	reg.Gauge("mig.live_early_hits").Set(int64(st.LiveEarlyHits))
	sets, clears := c.mig.Table().PendingTransitions()
	reg.Gauge("table.pending_sets").Set(int64(sets))
	reg.Gauge("table.pending_clears").Set(int64(clears))
	if c.aud != nil {
		steps, quiescents := c.aud.Audits()
		reg.Gauge("check.audits.step").Set(int64(steps))
		reg.Gauge("check.audits.quiescent").Set(int64(quiescents))
	}
}

// Report summarizes controller-level statistics.
type Report struct {
	All, On, Off stats.LatencyStat

	// DRAMAll/DRAMOn/DRAMOff measure the DRAM access latency alone
	// (queuing + device service), the metric of Figs. 11-15 and Table IV.
	DRAMAll, DRAMOn, DRAMOff stats.LatencyStat

	P95          int64
	MeanCoreLat  float64
	OnShare      float64 // fraction of accesses served on-package
	OnQueueMean  float64
	OffQueueMean float64
	Migration    core.Stats

	// Faults is the fault-handling ledger; nil when injection is off, so
	// fault-free reports stay byte-identical (omitted from JSON).
	Faults *fault.Report `json:",omitempty"`

	// Scheme summarizes the cache-scheme engine; nil under the default
	// migration scheme so pre-scheme reports stay byte-identical.
	Scheme *SchemeReport `json:",omitempty"`
}

// SchemeReport is the cache-scheme section of a Report.
type SchemeReport struct {
	Name string
	scheme.Stats
	HitRate float64
}

// Report returns the accumulated statistics.
func (c *Controller) Report() Report {
	r := Report{
		All: c.allLat, On: c.onLat, Off: c.offLat,
		DRAMAll: c.dramAll, DRAMOn: c.dramOn, DRAMOff: c.dramOff,
		P95: c.hist.Percentile(95),
	}
	if c.nDone > 0 {
		r.MeanCoreLat = float64(c.coreLatSum) / float64(c.nDone)
		r.OnShare = float64(c.onLat.Count()) / float64(c.nDone)
	}
	_, _, r.OnQueueMean = c.onSch.Stats()
	_, _, r.OffQueueMean = c.offSch.Stats()
	if c.mig != nil {
		r.Migration = c.mig.Stats()
	}
	r.Faults = c.FaultReport()
	if c.cache != nil {
		st := c.policy.Stats()
		r.Scheme = &SchemeReport{Name: c.policy.String(), Stats: st, HitRate: st.HitRate()}
	}
	return r
}

// Devices exposes the two DRAM models for inspection.
func (c *Controller) Devices() (on, off *dram.Device) { return c.onDev, c.offDev }

// ResetStats clears the latency and power accounting, keeping all
// simulation state (caches, table, bank states). Use it after a warmup
// phase so reported numbers reflect steady state.
func (c *Controller) ResetStats() {
	c.onLat = stats.LatencyStat{}
	c.offLat = stats.LatencyStat{}
	c.allLat = stats.LatencyStat{}
	c.hist = stats.Histogram{}
	c.dramAll = stats.LatencyStat{}
	c.dramOn = stats.LatencyStat{}
	c.dramOff = stats.LatencyStat{}
	c.coreLatSum = 0
	c.nDone = 0
	c.queueSum = 0
	if c.cfg.Power != nil {
		c.cfg.Power.Reset()
	}
}

// DebugState summarizes live scheduler state; used by diagnostic tools.
func (c *Controller) DebugState() string {
	return fmt.Sprintf("onQ=%d onBulk=%d offQ=%d offBulk=%d onBus0=%d onBus1=%d offBus0=%d stall=%d swap=%v",
		c.onSch.QueueLen(), c.onSch.BulkBacklog(), c.offSch.QueueLen(), c.offSch.BulkBacklog(),
		c.onDev.BusFree(0), c.onDev.BusFree(1), c.offDev.BusFree(0), c.stallUntil, c.mig != nil && c.mig.SwapInFlight())
}
