// The multi-channel controller hub: the physical address space is striped
// across N per-channel controllers at a configurable interleave granularity,
// and the hub routes each access by the decoded channel bits of the
// internal/addr mapping. Every shard is a complete heterogeneity-aware
// controller — its own FR-FCFS schedulers, bank state, migration engine,
// pooled freelists, and observability instruments — owning an equal slice
// of both regions, so shards share no mutable state and can advance on
// separate goroutines. Cross-channel swap copy legs pay a fixed-latency
// interconnect hop (Config.CopyHop), which the hub charges on every shard's
// copy read legs.
//
// A single-channel hub is pure delegation: construction, access path,
// report, and snapshot bytes are identical to a bare Controller, which is
// what keeps the pre-hub goldens byte-for-byte valid.
package memctrl

import (
	"fmt"

	"heteromem/internal/addr"
	"heteromem/internal/core"
	"heteromem/internal/fault"
	"heteromem/internal/obs"
	"heteromem/internal/power"
	"heteromem/internal/stats"
)

// DefaultHopLatency is the cross-channel interconnect hop, in cycles,
// charged on swap copy legs when a sharded hub is built without an explicit
// hop: a few cycles of on-chip switch traversal, in the spirit of the
// paper's Table II interconnect components.
const DefaultHopLatency = 8

// HubConfig shapes the multi-channel hub.
type HubConfig struct {
	// Channels is the number of controller shards (a positive power of
	// two; 0 and 1 both mean a single, non-sharded controller).
	Channels int

	// Interleave is the channel-striping granularity in bytes. 0 defaults
	// to the macro page size; any value must be a power-of-two multiple of
	// the macro page size so a macro page — the migration unit — lives
	// wholly inside one shard.
	Interleave uint64

	// HopLatency is the fixed cross-channel interconnect hop in cycles,
	// charged at the start of every swap copy read leg. 0 selects
	// DefaultHopLatency when Channels > 1; single-channel hubs never
	// charge a hop.
	HopLatency int64

	// ShardObs optionally gives each shard its own observability registry
	// (len == Channels). Shards must not share a registry: they advance
	// concurrently and the registry is not goroutine-safe.
	ShardObs []*obs.Registry

	// ShardPower optionally gives each shard its own power meter
	// (len == Channels); merge them for the machine-wide account.
	ShardPower []*power.Meter
}

// Hub routes program accesses to N per-channel controllers.
type Hub struct {
	ctrls  []*Controller
	iv     addr.Interleave
	hop    int64
	single *Controller // non-nil iff Channels == 1 (pure delegation)
}

// NewHub builds the hub. With hubCfg.Channels <= 1 the result wraps exactly
// one Controller built from cfg unchanged. With N > 1, cfg.Geometry is
// split N ways (capacities divide, device structure per shard unchanged)
// and cfg.Obs/cfg.Power must be unset — per-shard instruments come from
// HubConfig so shards never share mutable state. onResult, when non-nil,
// observes every completed access; under sharding its AccessResult carries
// the globalized physical address and the shard-local machine address.
func NewHub(cfg Config, hubCfg HubConfig, onResult func(AccessResult)) (*Hub, error) {
	n := hubCfg.Channels
	if n <= 0 {
		n = 1
	}
	if n == 1 {
		ctrl, err := New(cfg, onResult)
		if err != nil {
			return nil, err
		}
		iv, err := addr.NewInterleave(1, cfg.Geometry.MacroPageSize)
		if err != nil {
			return nil, err
		}
		return &Hub{ctrls: []*Controller{ctrl}, iv: iv, single: ctrl}, nil
	}
	gran := hubCfg.Interleave
	if gran == 0 {
		gran = cfg.Geometry.MacroPageSize
	}
	if gran%cfg.Geometry.MacroPageSize != 0 {
		return nil, fmt.Errorf("memctrl: interleave %d must be a multiple of the macro page size %d (a page must live in one shard)", gran, cfg.Geometry.MacroPageSize)
	}
	iv, err := addr.NewInterleave(n, gran)
	if err != nil {
		return nil, fmt.Errorf("memctrl: %w", err)
	}
	stripe := gran * uint64(n)
	// Both region boundaries must fall on whole stripes so that stripping
	// the channel bits maps the global on-package region [0, OnCap) exactly
	// onto every shard's local [0, OnCap/n) — the shard-local static split
	// then equals the global one.
	if cfg.Geometry.OnPackageCapacity%stripe != 0 || cfg.Geometry.TotalCapacity%stripe != 0 {
		return nil, fmt.Errorf("memctrl: capacities (%d on, %d total) must be multiples of the %d-byte channel stripe",
			cfg.Geometry.OnPackageCapacity, cfg.Geometry.TotalCapacity, stripe)
	}
	if cfg.Obs != nil || cfg.Power != nil {
		return nil, fmt.Errorf("memctrl: sharded hub requires per-shard instruments (HubConfig.ShardObs/ShardPower), not shared Config.Obs/Power")
	}
	if hubCfg.ShardObs != nil && len(hubCfg.ShardObs) != n {
		return nil, fmt.Errorf("memctrl: ShardObs has %d registries for %d channels", len(hubCfg.ShardObs), n)
	}
	if hubCfg.ShardPower != nil && len(hubCfg.ShardPower) != n {
		return nil, fmt.Errorf("memctrl: ShardPower has %d meters for %d channels", len(hubCfg.ShardPower), n)
	}
	shardGeom, err := cfg.Geometry.Shard(n)
	if err != nil {
		return nil, fmt.Errorf("memctrl: %w", err)
	}
	hop := hubCfg.HopLatency
	if hop == 0 {
		hop = DefaultHopLatency
	}
	h := &Hub{ctrls: make([]*Controller, n), iv: iv, hop: hop}
	for i := 0; i < n; i++ {
		scfg := cfg
		scfg.Geometry = shardGeom
		scfg.CopyHop = hop
		if hubCfg.ShardObs != nil {
			scfg.Obs = hubCfg.ShardObs[i]
		}
		if hubCfg.ShardPower != nil {
			scfg.Power = hubCfg.ShardPower[i]
		}
		var shardResult func(AccessResult)
		if onResult != nil {
			ch := i
			shardResult = func(r AccessResult) {
				r.Phys = h.iv.Global(ch, r.Phys)
				onResult(r)
			}
		}
		ctrl, err := New(scfg, shardResult)
		if err != nil {
			return nil, fmt.Errorf("memctrl: channel %d: %w", i, err)
		}
		h.ctrls[i] = ctrl
	}
	return h, nil
}

// Channels returns the shard count.
func (h *Hub) Channels() int { return len(h.ctrls) }

// Interleave returns the channel-routing mapping.
func (h *Hub) Interleave() addr.Interleave { return h.iv }

// Mapping returns the hub's routing decode as a full bit-field mapping.
func (h *Hub) Mapping() *addr.Mapping { return h.iv.Mapping() }

// HopLatency returns the effective cross-channel hop (0 for a single
// channel).
func (h *Hub) HopLatency() int64 { return h.hop }

// Shard exposes channel i's controller (the sim's barrier workers drive
// shards directly with pre-routed records).
func (h *Hub) Shard(i int) *Controller { return h.ctrls[i] }

// Route decodes the channel and shard-local address of a physical address.
func (h *Hub) Route(phys uint64) (ch int, local uint64) {
	if h.single != nil {
		return 0, phys
	}
	return h.iv.ChannelOf(phys), h.iv.Local(phys)
}

// Access routes one program access to its channel's controller. The
// allocation-free shard access path is preserved: routing is three shifts
// and a slice index.
func (h *Hub) Access(phys uint64, write bool, now int64) error {
	if h.single != nil {
		return h.single.Access(phys, write, now)
	}
	return h.ctrls[h.iv.ChannelOf(phys)].Access(h.iv.Local(phys), write, now)
}

// Flush drains every shard and returns the latest final cycle.
func (h *Hub) Flush() int64 {
	if h.single != nil {
		return h.single.Flush()
	}
	var last int64
	for _, c := range h.ctrls {
		if f := c.Flush(); f > last {
			last = f
		}
	}
	return last
}

// Err returns the first latched shard failure, in channel order.
func (h *Hub) Err() error {
	for _, c := range h.ctrls {
		if err := c.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Migrator exposes the migration engine of a single-channel hub; a sharded
// hub has one migrator per shard (see Shard) and returns nil.
func (h *Hub) Migrator() *core.Migrator {
	if h.single != nil {
		return h.single.Migrator()
	}
	return nil
}

// ResetStats clears every shard's statistics (the warmup boundary).
func (h *Hub) ResetStats() {
	for _, c := range h.ctrls {
		c.ResetStats()
	}
}

// PublishObs exports every shard's snapshot-time gauges into its own
// registry.
func (h *Hub) PublishObs() {
	for _, c := range h.ctrls {
		c.PublishObs()
	}
}

// FaultReport merges the per-shard fault ledgers (nil when injection is
// off).
func (h *Hub) FaultReport() *fault.Report {
	if h.single != nil {
		return h.single.FaultReport()
	}
	var merged *fault.Report
	for _, c := range h.ctrls {
		rep := c.FaultReport()
		if rep == nil {
			continue
		}
		if merged == nil {
			merged = &fault.Report{}
		}
		merged.Merge(rep)
	}
	return merged
}

// Report folds the per-shard statistics into one machine-wide report.
// Every aggregate is computed from the shards' raw accumulators — Welford
// states merge exactly (Chan et al.), histogram buckets add before the
// percentile, queue-delay sums divide once at the end — and shards fold in
// fixed channel order, so the report is identical regardless of which
// shard's goroutine finished first.
func (h *Hub) Report() Report {
	if h.single != nil {
		return h.single.Report()
	}
	var r Report
	var hist stats.Histogram
	var coreLatSum int64
	var nDone uint64
	var onServed, offServed uint64
	var onQueue, offQueue int64
	for _, c := range h.ctrls {
		r.All.Merge(c.allLat)
		r.On.Merge(c.onLat)
		r.Off.Merge(c.offLat)
		r.DRAMAll.Merge(c.dramAll)
		r.DRAMOn.Merge(c.dramOn)
		r.DRAMOff.Merge(c.dramOff)
		hist.Merge(&c.hist)
		coreLatSum += c.coreLatSum
		nDone += c.nDone
		s, q := c.onSch.QueueTotals()
		onServed += s
		onQueue += q
		s, q = c.offSch.QueueTotals()
		offServed += s
		offQueue += q
		if c.mig != nil {
			r.Migration.Merge(c.mig.Stats())
		}
		if c.cache != nil {
			if r.Scheme == nil {
				r.Scheme = &SchemeReport{Name: c.policy.String()}
			}
			r.Scheme.Stats.Add(c.policy.Stats())
		}
	}
	if r.Scheme != nil {
		r.Scheme.HitRate = r.Scheme.Stats.HitRate()
	}
	r.P95 = hist.Percentile(95)
	if nDone > 0 {
		r.MeanCoreLat = float64(coreLatSum) / float64(nDone)
		r.OnShare = float64(r.On.Count()) / float64(nDone)
	}
	if onServed > 0 {
		r.OnQueueMean = float64(onQueue) / float64(onServed)
	}
	if offServed > 0 {
		r.OffQueueMean = float64(offQueue) / float64(offServed)
	}
	r.Faults = h.FaultReport()
	return r
}
