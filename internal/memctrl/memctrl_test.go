package memctrl

import (
	"testing"

	"heteromem/internal/addr"
	"heteromem/internal/config"
	"heteromem/internal/core"
	"heteromem/internal/power"
)

func smallConfig() Config {
	g := config.TraceGeometry()
	g.TotalCapacity = 64 * addr.MiB
	g.OnPackageCapacity = 8 * addr.MiB
	g.MacroPageSize = 256 * addr.KiB
	return Config{
		Geometry:  g,
		Latencies: config.TableIILatencies(),
		OffTiming: config.OffPackageTiming(),
		OnTiming:  config.OnPackageTiming(),
	}
}

func TestStaticRouting(t *testing.T) {
	var results []AccessResult
	ctrl, err := New(smallConfig(), func(r AccessResult) { results = append(results, r) })
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Access(4096, false, 0); err != nil { // below 8MB: on-package
		t.Fatal(err)
	}
	if err := ctrl.Access(32*addr.MiB, false, 100); err != nil { // above: off
		t.Fatal(err)
	}
	ctrl.Flush()
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	if results[0].Region != OnPackage || results[1].Region != OffPackage {
		t.Fatalf("routing wrong: %v, %v", results[0].Region, results[1].Region)
	}
	if results[0].Latency() >= results[1].Latency() {
		t.Fatalf("on-package %d not faster than off-package %d",
			results[0].Latency(), results[1].Latency())
	}
}

func TestLatencyComposition(t *testing.T) {
	var res AccessResult
	cfg := smallConfig()
	ctrl, err := New(cfg, func(r AccessResult) { res = r })
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Access(32*addr.MiB, false, 0)
	ctrl.Flush()
	// Unloaded off-package access: fixed path + activation + CAS + burst.
	tm := cfg.OffTiming
	want := cfg.Latencies.OffPackageFixed() + tm.TRCD + tm.TCL + tm.TBurst
	if res.Latency() != want {
		t.Fatalf("unloaded off-package latency = %d, want %d", res.Latency(), want)
	}
}

func TestTranslationLookupCharged(t *testing.T) {
	// With migration, every access pays the 2-cycle RAM+CAM lookup.
	var lat [2]int64
	for i, mig := range []*core.Options{nil, {Design: core.DesignN1, SwapInterval: 1 << 30}} {
		cfg := smallConfig()
		cfg.Migration = mig
		var res AccessResult
		ctrl, err := New(cfg, func(r AccessResult) { res = r })
		if err != nil {
			t.Fatal(err)
		}
		ctrl.Access(4096, false, 0)
		ctrl.Flush()
		lat[i] = res.Latency()
	}
	if lat[1]-lat[0] != smallConfig().Latencies.TranslationLookup {
		t.Fatalf("translation lookup not charged: %d vs %d", lat[0], lat[1])
	}
}

func TestMigrationEndToEnd(t *testing.T) {
	cfg := smallConfig()
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 500}
	cfg.Power = power.NewMeter(config.PaperPower())
	ctrl, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer one off-package page.
	hot := uint64(32 * addr.MiB)
	now := int64(0)
	for i := 0; i < 20000; i++ {
		now += 50
		if err := ctrl.Access(hot+uint64(i%4096)*64%262144, i%3 == 0, now); err != nil {
			t.Fatal(err)
		}
	}
	ctrl.Flush()
	rep := ctrl.Report()
	if rep.Migration.SwapsCompleted == 0 {
		t.Fatal("no swaps completed")
	}
	if rep.OnShare < 0.5 {
		t.Fatalf("hot page not captured: on-share %.2f", rep.OnShare)
	}
	if rep.Migration.BytesCopied == 0 {
		t.Fatal("no copy traffic accounted")
	}
	// Copy traffic must show up in the power meter.
	_, _, cOn, cOff := cfg.Power.TrafficBits()
	if cOn == 0 || cOff == 0 {
		t.Fatalf("copy power not metered: on=%f off=%f", cOn, cOff)
	}
	if mg := ctrl.Migrator(); mg == nil || mg.Table().CheckInvariants() != nil {
		t.Fatal("migrator table invariants violated")
	}
}

func TestOSAssistedChargesEpochOverhead(t *testing.T) {
	run := func(osAssisted bool) float64 {
		cfg := smallConfig()
		cfg.Migration = &core.Options{Design: core.DesignN1, SwapInterval: 100}
		cfg.OSAssisted = osAssisted
		ctrl, err := New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		now := int64(0)
		for i := 0; i < 5000; i++ {
			now += 60
			ctrl.Access(uint64(i%100)*4096, false, now)
		}
		ctrl.Flush()
		return ctrl.Report().All.Mean()
	}
	hw, os := run(false), run(true)
	if os <= hw {
		t.Fatalf("OS-assisted mean %.1f not above pure-hardware %.1f", os, hw)
	}
}

func TestResetStats(t *testing.T) {
	ctrl, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Access(0, false, 0)
	ctrl.Flush()
	if ctrl.Report().All.Count() != 1 {
		t.Fatal("access not counted")
	}
	ctrl.ResetStats()
	if ctrl.Report().All.Count() != 0 {
		t.Fatal("stats survive reset")
	}
}

func TestInvalidGeometryRejected(t *testing.T) {
	cfg := smallConfig()
	cfg.Geometry.MacroPageSize = 3 * addr.MiB
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestDRAMLatencySplit(t *testing.T) {
	ctrl, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Access(32*addr.MiB, false, 0)
	ctrl.Flush()
	rep := ctrl.Report()
	if rep.DRAMAll.Count() != 1 {
		t.Fatal("DRAM latency not recorded")
	}
	// The DRAM-internal latency excludes the fixed wire path.
	if rep.DRAMAll.Mean() >= rep.All.Mean() {
		t.Fatalf("DRAM latency %.1f not below end-to-end %.1f",
			rep.DRAMAll.Mean(), rep.All.Mean())
	}
}
