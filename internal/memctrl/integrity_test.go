package memctrl

import (
	"math/rand"
	"testing"

	"heteromem/internal/core"
)

// TestShadowIntegrity is the strongest end-to-end correctness check of the
// migration machinery: a shadow map tracks which physical page's data each
// machine sub-block currently holds (updated by observing the controller's
// copy legs through the migrator's own step reporting), and every program
// access must translate to a machine location that holds its page's data —
// including mid-swap and mid-live-fill, which is exactly the guarantee the
// paper's P/F bits exist to provide.
func TestShadowIntegrity(t *testing.T) {
	for _, design := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
		t.Run(design.String(), func(t *testing.T) {
			cfg := smallConfig()
			cfg.Migration = &core.Options{Design: design, SwapInterval: 300}
			ctrl, err := New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			mig := ctrl.Migrator()
			pageSize := cfg.Geometry.MacroPageSize
			subSize := cfg.Geometry.SubBlockSize

			// shadow[machine sub-block] = physical page whose data is there.
			shadow := map[uint64]uint64{}
			totalPages := cfg.Geometry.TotalPages()
			subsPerPage := pageSize / subSize
			for p := uint64(0); p < totalPages; p++ {
				for sb := uint64(0); sb < subsPerPage; sb++ {
					shadow[p*subsPerPage+sb] = p
				}
			}
			if er := mig.Table().EmptyRow(); er >= 0 {
				// The sacrificed slot's page starts parked in Ω.
				omega := mig.Table().Omega()
				for sb := uint64(0); sb < subsPerPage; sb++ {
					shadow[omega*subsPerPage+sb] = uint64(er)
				}
			}

			// Track copy legs: memctrl reports sub-block completion to the
			// migrator, but for the shadow we intercept at the plan level by
			// replaying SubCopy legs as they are issued. We hook the same
			// data the controller uses: each completed write leg's SubCopy.
			ctrl.onCopyDone = func(sc core.SubCopy) {
				src := sc.Src / subSize
				dst := sc.Dst / subSize
				pg, ok := shadow[src]
				if !ok {
					t.Fatalf("%v: copy reads machine sub %#x holding nothing", design, sc.Src)
				}
				if sc.Exchange {
					shadow[src], shadow[dst] = shadow[dst], pg
				} else {
					shadow[dst] = pg
				}
			}

			rng := rand.New(rand.NewSource(99))
			now := int64(0)
			footprint := cfg.Geometry.TotalCapacity
			for i := 0; i < 60000; i++ {
				now += 40
				// Skew accesses so swaps keep happening.
				var a uint64
				if rng.Intn(10) < 7 {
					hotPage := uint64(rng.Intn(8)) + 40
					a = hotPage*pageSize + uint64(rng.Int63n(int64(pageSize)))&^63
				} else {
					a = uint64(rng.Int63n(int64(footprint))) &^ 63
				}

				machine, _ := mig.Translate(a)
				page := a / pageSize
				sub := machine / subSize
				if got, ok := shadow[sub]; !ok || got != page {
					t.Fatalf("%v: access %d: page %d routed to machine %#x which holds page %d (ok=%v)",
						design, i, page, machine, got, ok)
				}
				if err := ctrl.Access(a, rng.Intn(3) == 0, now); err != nil {
					t.Fatal(err)
				}
			}
			ctrl.Flush()
			if ctrl.Report().Migration.SwapsCompleted == 0 {
				t.Fatalf("%v: test exercised no swaps", design)
			}
		})
	}
}
