package memctrl

import (
	"encoding/json"
	"math/rand"
	"testing"

	"heteromem/internal/core"
	"heteromem/internal/obs"
)

// hubConfig is smallConfig with migration on, so the sharded tests exercise
// translation, swaps, and copy traffic, not just static routing.
func hubConfig() Config {
	cfg := smallConfig()
	cfg.Migration = &core.Options{Design: core.DesignLive, SwapInterval: 200}
	return cfg
}

// hubTrace materializes a deterministic access stream over the global
// address space: hot pages (migration candidates) plus a uniform tail.
func hubTrace(n int, total uint64) []struct {
	a     uint64
	write bool
	cycle int64
} {
	rng := rand.New(rand.NewSource(42))
	recs := make([]struct {
		a     uint64
		write bool
		cycle int64
	}, n)
	var cycle int64
	for i := range recs {
		cycle += int64(rng.Intn(40)) + 1
		var a uint64
		if rng.Intn(100) < 70 {
			a = uint64(rng.Intn(8)) * (total / 16) // hot pages
		} else {
			a = uint64(rng.Int63n(int64(total)))
		}
		a &^= 63
		recs[i] = struct {
			a     uint64
			write bool
			cycle int64
		}{a: a, write: rng.Intn(4) == 0, cycle: cycle}
	}
	return recs
}

func TestHubSingleChannelDelegates(t *testing.T) {
	cfg := hubConfig()
	bare, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewHub(cfg, HubConfig{Channels: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hub.Channels() != 1 || hub.HopLatency() != 0 {
		t.Fatalf("single hub: channels=%d hop=%d", hub.Channels(), hub.HopLatency())
	}
	for _, r := range hubTrace(30_000, cfg.Geometry.TotalCapacity) {
		if err := bare.Access(r.a, r.write, r.cycle); err != nil {
			t.Fatal(err)
		}
		if err := hub.Access(r.a, r.write, r.cycle); err != nil {
			t.Fatal(err)
		}
	}
	if bf, hf := bare.Flush(), hub.Flush(); bf != hf {
		t.Fatalf("flush cycle %d vs %d", bf, hf)
	}
	got, _ := json.Marshal(hub.Report())
	want, _ := json.Marshal(bare.Report())
	if string(got) != string(want) {
		t.Fatalf("single-channel hub report diverged:\n got %s\nwant %s", got, want)
	}
}

func TestHubRoutingMatchesInterleave(t *testing.T) {
	cfg := hubConfig()
	hub, err := NewHub(cfg, HubConfig{Channels: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	gran := cfg.Geometry.MacroPageSize
	for _, a := range []uint64{0, 1, gran - 1, gran, 3 * gran, cfg.Geometry.TotalCapacity - 1} {
		ch, local := hub.Route(a)
		if want := int((a / gran) % 4); ch != want {
			t.Fatalf("Route(%#x) channel = %d, want %d", a, ch, want)
		}
		if back := hub.Interleave().Global(ch, local); back != a {
			t.Fatalf("Global(%d, %#x) = %#x, want %#x", ch, local, back, a)
		}
	}
	if m := hub.Mapping(); m.ChannelOf(5*gran) != 1 {
		t.Fatal("Mapping disagrees with Interleave routing")
	}
}

// TestHubReportShuffledCompletion is the channel-completion-order contract:
// shards reach their final state from their own access subsequences no
// matter how those subsequences interleave globally (which is exactly what
// varying goroutine completion order does), and the folded report is
// byte-identical.
func TestHubReportShuffledCompletion(t *testing.T) {
	cfg := hubConfig()
	recs := hubTrace(30_000, cfg.Geometry.TotalCapacity)

	run := func(shuffle *rand.Rand) string {
		hub, err := NewHub(cfg, HubConfig{Channels: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Pre-route into per-shard subsequences (preserving per-shard
		// order), then drain the shards in a shuffled round-robin so every
		// trial commits shard work in a different global order.
		batches := make([][]struct {
			local uint64
			write bool
			cycle int64
		}, 4)
		for _, r := range recs {
			ch, local := hub.Route(r.a)
			batches[ch] = append(batches[ch], struct {
				local uint64
				write bool
				cycle int64
			}{local, r.write, r.cycle})
		}
		pos := make([]int, 4)
		for {
			live := make([]int, 0, 4)
			for ch := range batches {
				if pos[ch] < len(batches[ch]) {
					live = append(live, ch)
				}
			}
			if len(live) == 0 {
				break
			}
			ch := live[0]
			if shuffle != nil {
				ch = live[shuffle.Intn(len(live))]
			}
			take := 1
			if shuffle != nil {
				take += shuffle.Intn(64)
			}
			for ; take > 0 && pos[ch] < len(batches[ch]); take-- {
				r := batches[ch][pos[ch]]
				if err := hub.Shard(ch).Access(r.local, r.write, r.cycle); err != nil {
					t.Fatal(err)
				}
				pos[ch]++
			}
		}
		hub.Flush()
		if err := hub.Err(); err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(hub.Report())
		return string(b)
	}

	want := run(nil)
	for trial := 0; trial < 5; trial++ {
		if got := run(rand.New(rand.NewSource(int64(trial)))); got != want {
			t.Fatalf("shuffled completion trial %d diverged:\n got %s\nwant %s", trial, got, want)
		}
	}
}

// TestHubShardObsIsolated: a sharded hub refuses shared instruments and
// accepts per-shard registries, whose merged snapshot carries every shard's
// counters.
func TestHubShardObsIsolated(t *testing.T) {
	cfg := hubConfig()
	cfg.Obs = obs.NewRegistry()
	if _, err := NewHub(cfg, HubConfig{Channels: 2}, nil); err == nil {
		t.Fatal("shared Config.Obs must be rejected for a sharded hub")
	}
	cfg.Obs = nil

	regs := []*obs.Registry{obs.NewRegistry(), obs.NewRegistry()}
	hub, err := NewHub(cfg, HubConfig{Channels: 2, ShardObs: regs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range hubTrace(10_000, cfg.Geometry.TotalCapacity) {
		if err := hub.Access(r.a, r.write, r.cycle); err != nil {
			t.Fatal(err)
		}
	}
	hub.Flush()
	hub.PublishObs()
	merged := obs.MergeSnapshots(regs[0].Snapshot(), regs[1].Snapshot())
	var perShard uint64
	for _, reg := range regs {
		s := reg.Snapshot()
		perShard += s.Get("memctrl.access.on") + s.Get("memctrl.access.off")
	}
	if perShard == 0 {
		t.Fatal("no per-shard accesses counted")
	}
	if got := merged.Get("memctrl.access.on") + merged.Get("memctrl.access.off"); got != perShard {
		t.Fatalf("merged accesses = %d, want %d", got, perShard)
	}
}

// TestHubValidation covers the layout rules in one place.
func TestHubValidation(t *testing.T) {
	cfg := hubConfig()
	if _, err := NewHub(cfg, HubConfig{Channels: 3}, nil); err == nil {
		t.Fatal("channels=3 accepted")
	}
	if _, err := NewHub(cfg, HubConfig{Channels: 2, Interleave: cfg.Geometry.MacroPageSize / 2}, nil); err == nil {
		t.Fatal("sub-page interleave accepted")
	}
	if _, err := NewHub(cfg, HubConfig{Channels: 2, ShardObs: []*obs.Registry{obs.NewRegistry()}}, nil); err == nil {
		t.Fatal("short ShardObs accepted")
	}
	bad := cfg
	bad.Geometry.OnPackageCapacity = cfg.Geometry.MacroPageSize // one stripe cannot split 4 ways
	if _, err := NewHub(bad, HubConfig{Channels: 4}, nil); err == nil {
		t.Fatal("non-stripe-aligned capacity accepted")
	}
}

// TestHubZeroAllocAccess is the hard allocation gate for the sharded access
// path: at steady state, routing plus the shard controller's pipeline must
// not allocate, for 1, 2, and 4 channels.
func TestHubZeroAllocAccess(t *testing.T) {
	for _, channels := range []int{1, 2, 4} {
		cfg := hubConfig()
		hub, err := NewHub(cfg, HubConfig{Channels: channels}, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs := hubTrace(1<<15, cfg.Geometry.TotalCapacity)
		// Warm pass: freelists fill, first swaps complete.
		for _, r := range recs {
			if err := hub.Access(r.a, r.write, r.cycle); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		cycle := recs[len(recs)-1].cycle
		allocs := testing.AllocsPerRun(5000, func() {
			r := recs[i&(len(recs)-1)]
			i++
			cycle += 17
			if err := hub.Access(r.a, r.write, cycle); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("channels=%d: %v allocs/op on the access path, want 0", channels, allocs)
		}
	}
}
