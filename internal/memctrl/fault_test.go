package memctrl

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"heteromem/internal/addr"
	"heteromem/internal/core"
	"heteromem/internal/fault"
)

// faultConfig is smallConfig with auditing on and the given fault campaign.
func faultConfig(mig *core.Options, fc fault.Config) Config {
	cfg := smallConfig()
	cfg.Migration = mig
	cfg.Audit = mig != nil
	cfg.Fault = fc
	return cfg
}

// hammerHot drives n accesses at a hot off-package page so migration has
// something to do; returns the final cycle fed to the controller.
func hammerHot(t *testing.T, ctrl *Controller, n int) int64 {
	t.Helper()
	hot := uint64(32 * addr.MiB)
	now := int64(0)
	for i := 0; i < n; i++ {
		now += 50
		if err := ctrl.Access(hot+uint64(i%64)*4096, i%3 == 0, now); err != nil {
			t.Fatalf("access %d: %v", i, err)
		}
	}
	return now
}

// checkLedger asserts the run ended clean with a balanced fault ledger.
func checkLedger(t *testing.T, ctrl *Controller) *fault.Report {
	t.Helper()
	ctrl.Flush()
	if err := ctrl.Err(); err != nil {
		t.Fatalf("run failed: %v", err)
	}
	rep := ctrl.FaultReport()
	if rep == nil {
		t.Fatal("fault injection configured but FaultReport is nil")
	}
	if !rep.Balanced(rep.Injected) {
		t.Fatalf("ledger unbalanced: %+v", rep)
	}
	return rep
}

func TestZeroFaultConfigKeepsInjectorOff(t *testing.T) {
	// A zero-valued (and a seed-only) fault config must leave the injector
	// nil so every hot path and the report stay byte-identical.
	for _, fc := range []fault.Config{{}, {Seed: 99, RetryBudget: 5}} {
		ctrl, err := New(faultConfig(&core.Options{Design: core.DesignLive, SwapInterval: 500}, fc), nil)
		if err != nil {
			t.Fatal(err)
		}
		hammerHot(t, ctrl, 2000)
		ctrl.Flush()
		if err := ctrl.Err(); err != nil {
			t.Fatal(err)
		}
		if ctrl.FaultReport() != nil {
			t.Fatalf("config %+v produced a fault report", fc)
		}
		if ctrl.Report().Faults != nil {
			t.Fatal("Report.Faults set without injection")
		}
	}
}

func TestDeviceFaultRetries(t *testing.T) {
	// One scheduled device fault, no budget pressure: the burst must be
	// retried and the access still delivered.
	var delivered int
	ctrl, err := New(faultConfig(
		&core.Options{Design: core.DesignLive, SwapInterval: 1 << 30},
		fault.Config{Schedule: "device@1"},
	), func(AccessResult) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Access(32*addr.MiB, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Access(32*addr.MiB, false, 1_000_000); err != nil {
		t.Fatal(err)
	}
	rep := checkLedger(t, ctrl)
	if delivered != 2 {
		t.Fatalf("delivered %d accesses, want 2", delivered)
	}
	if rep.Injected != 1 || rep.DeviceFaults != 1 || rep.Retried != 1 {
		t.Fatalf("want 1 retried device fault, got %+v", rep)
	}
}

func TestDeviceRetryChargesLatency(t *testing.T) {
	// The faulted burst plus backoff must show up in the access latency.
	lat := func(fc fault.Config) int64 {
		var res AccessResult
		ctrl, err := New(faultConfig(nil, fc), func(r AccessResult) { res = r })
		if err != nil {
			t.Fatal(err)
		}
		if err := ctrl.Access(32*addr.MiB, false, 0); err != nil {
			t.Fatal(err)
		}
		ctrl.Flush()
		if err := ctrl.Err(); err != nil {
			t.Fatal(err)
		}
		return res.Latency()
	}
	clean := lat(fault.Config{})
	faulted := lat(fault.Config{Schedule: "device@1", RetryBackoff: 512})
	if faulted <= clean+512 {
		t.Fatalf("retry cost not charged: clean=%d faulted=%d", clean, faulted)
	}
}

func TestStalledSwapRollsBack(t *testing.T) {
	// DesignN copies synchronously; four consecutive copy faults exhaust
	// the default retry budget (3) on the first leg and force a rollback.
	ctrl, err := New(faultConfig(
		&core.Options{Design: core.DesignN, SwapInterval: 200},
		fault.Config{Schedule: "copy@1-4"},
	), nil)
	if err != nil {
		t.Fatal(err)
	}
	hammerHot(t, ctrl, 4000)
	rep := checkLedger(t, ctrl)
	if rep.SwapsRolledBack != 1 {
		t.Fatalf("want exactly 1 rolled-back swap, got %+v", rep)
	}
	if rep.Retried != 3 || rep.RolledBack != 1 {
		t.Fatalf("want 3 retried + 1 rolled-back copy faults, got %+v", rep)
	}
	// The aborted swap must not have poisoned the pipeline: later epochs
	// retry the migration and complete it.
	if ctrl.Migrator().Stats().SwapsCompleted == 0 {
		t.Fatal("no swap completed after the rollback")
	}
	if err := ctrl.Migrator().Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundSwapRollsBack(t *testing.T) {
	// N-1 runs swaps in the background with many sub-block legs in flight;
	// faults spread across legs, so every early copy probe must fault for
	// one leg to exhaust its budget. The swap then rolls back, and since
	// the undo legs fault too, the rollback is abandoned into degraded
	// mode — the deepest escalation path.
	ctrl, err := New(faultConfig(
		&core.Options{Design: core.DesignN1, SwapInterval: 200},
		fault.Config{Schedule: "copy@1-2000"},
	), nil)
	if err != nil {
		t.Fatal(err)
	}
	hammerHot(t, ctrl, 4000)
	rep := checkLedger(t, ctrl)
	if rep.SwapsRolledBack == 0 {
		t.Fatalf("saturated copy faults did not roll the swap back: %+v", rep)
	}
	if err := ctrl.Migrator().Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStalledUndoFaultsDegrade(t *testing.T) {
	// Deepest escalation: the first copy leg lands (probe 1 clean), the
	// next leg exhausts its retries (probes 2-5) forcing a rollback, and
	// the undo copy of the landed data exhausts its retries too (probes
	// 6-9). The rollback is abandoned: the table snapshot is still
	// restored and migration freezes.
	ctrl, err := New(faultConfig(
		&core.Options{Design: core.DesignN, SwapInterval: 200},
		fault.Config{Schedule: "copy@2-9"},
	), nil)
	if err != nil {
		t.Fatal(err)
	}
	hammerHot(t, ctrl, 4000)
	rep := checkLedger(t, ctrl)
	if rep.SwapsRolledBack != 1 {
		t.Fatalf("want 1 rolled-back swap, got %+v", rep)
	}
	if !rep.DegradedMode {
		t.Fatalf("abandoned undo did not degrade: %+v", rep)
	}
	if err := ctrl.Migrator().Table().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSlotRetirement(t *testing.T) {
	// Two faults on the same on-package frame with RetireAfter=2: the slot
	// must be retired and its page exiled to a spare frame past Ω.
	var last AccessResult
	ctrl, err := New(faultConfig(
		&core.Options{Design: core.DesignN1, SwapInterval: 1 << 30},
		fault.Config{Schedule: "device@1-2", RetireAfter: 2},
	), func(r AccessResult) { last = r })
	if err != nil {
		t.Fatal(err)
	}
	// First access faults twice (original + retry) on frame 0 and queues
	// the retirement; the next access executes it at a quiescent point.
	if err := ctrl.Access(0, false, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Access(0, false, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Access(0, false, 2_000_000); err != nil {
		t.Fatal(err)
	}
	rep := checkLedger(t, ctrl)
	if rep.SlotsRetired != 1 || rep.Retired != 1 {
		t.Fatalf("want 1 retired slot (1 Retired disposition), got %+v", rep)
	}
	tab := ctrl.Migrator().Table()
	if !tab.Retired(0) {
		t.Fatal("slot 0 not marked retired")
	}
	spare, ok := tab.ExiledTo(0)
	if !ok || spare <= tab.Omega() {
		t.Fatalf("page 0 not exiled past Ω: spare=%d ok=%v", spare, ok)
	}
	// The exiled page stays reachable, now off-package.
	if last.Region != OffPackage {
		t.Fatal("access to exiled page not routed off-package")
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDegradedModeFreezesMigration(t *testing.T) {
	// DegradeBudget=1: the very first fault freezes migration for good.
	ctrl, err := New(faultConfig(
		&core.Options{Design: core.DesignLive, SwapInterval: 200},
		fault.Config{Schedule: "device@1", DegradeBudget: 1},
	), nil)
	if err != nil {
		t.Fatal(err)
	}
	hammerHot(t, ctrl, 4000)
	rep := checkLedger(t, ctrl)
	if !rep.DegradedMode {
		t.Fatalf("controller not degraded: %+v", rep)
	}
	if rep.Degraded == 0 {
		t.Fatalf("no fault accounted as Degraded: %+v", rep)
	}
	st := ctrl.Migrator().Stats()
	if st.SwapsStarted != 0 {
		t.Fatalf("degraded mode still started %d swaps", st.SwapsStarted)
	}
	if !ctrl.Migrator().Degraded() {
		t.Fatal("migrator not frozen")
	}
}

func TestFaultRatesAcrossDesigns(t *testing.T) {
	// Probabilistic campaign over every design: whatever mix of retries,
	// rollbacks, retirements, and degradation results, the run must finish
	// without error, with a balanced ledger and an intact table.
	for _, d := range []core.Design{core.DesignN, core.DesignN1, core.DesignLive} {
		t.Run(d.String(), func(t *testing.T) {
			ctrl, err := New(faultConfig(
				&core.Options{Design: d, SwapInterval: 200},
				fault.Config{Seed: 7, DeviceRate: 2e-4, CopyRate: 2e-3, BulkRate: 2e-3, DegradeBudget: 200},
			), nil)
			if err != nil {
				t.Fatal(err)
			}
			hammerHot(t, ctrl, 20000)
			rep := checkLedger(t, ctrl)
			if rep.Injected == 0 {
				t.Fatal("campaign injected nothing")
			}
			if err := ctrl.Migrator().Table().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestErrLatchesFirstFailure(t *testing.T) {
	ctrl, err := New(smallConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	first := errors.New("first failure")
	ctrl.fail(first)
	ctrl.fail(errors.New("second failure"))
	if got := ctrl.Err(); got != first {
		t.Fatalf("Err() = %v, want the first failure", got)
	}
	// The latched error also short-circuits Access.
	if err := ctrl.Access(0, false, 0); err != first {
		t.Fatalf("Access after failure = %v, want the latched error", err)
	}
}

func TestFlushRejectsInFlightSwap(t *testing.T) {
	for _, fc := range []fault.Config{{}, {Schedule: "device@1"}} {
		t.Run(fmt.Sprintf("fault=%v", fc.Enabled()), func(t *testing.T) {
			ctrl, err := New(faultConfig(
				&core.Options{Design: core.DesignN1, SwapInterval: 100},
				fc,
			), nil)
			if err != nil {
				t.Fatal(err)
			}
			// Feed some real traffic first so a faulted variant has probes.
			if err := ctrl.Access(32*addr.MiB, false, 0); err != nil {
				t.Fatal(err)
			}
			// Start a swap behind the controller's back: the migrator has a
			// plan in flight but the controller holds none of its copy legs,
			// so the flush can never drain it.
			mig := ctrl.Migrator()
			hot := uint64(32 * addr.MiB)
			var subs []core.SubCopy
			for i := 0; subs == nil && i < 1000; i++ {
				mig.OnAccess(hot, false)
				subs = mig.EpochTick()
			}
			if subs == nil {
				t.Fatal("could not provoke a swap plan")
			}
			ctrl.Flush()
			err = ctrl.Err()
			if err == nil || !strings.Contains(err.Error(), "swap still in flight") {
				t.Fatalf("flush with orphaned swap returned %v", err)
			}
		})
	}
}
