package memctrl

import (
	"fmt"
	"sort"

	"heteromem/internal/core"
	"heteromem/internal/sched"
	"heteromem/internal/snap"
)

// The controller snapshot captures the whole pipeline between two program
// accesses: clocks, both DRAM devices, both schedulers, the migration
// engine, the latency accumulators, the in-flight copy legs with their
// shared step state, and the fault-response ledger. Auxiliary maps keyed by
// request/job pointers are serialized positionally in the schedulers' own
// deterministic walk order (on-package first, then off-package) and
// reattached to the fresh pointers the scheduler restore materializes.

// SnapshotTo writes the controller's dynamic state. A controller with a
// latched asynchronous error refuses to snapshot: the checkpoint would
// otherwise silently resurrect a run that already failed.
func (c *Controller) SnapshotTo(e *snap.Encoder) {
	if c.firstErr != nil {
		e.Fail(fmt.Errorf("memctrl: cannot checkpoint a failed controller: %w", c.firstErr))
		return
	}
	e.I64(c.now)
	e.I64(c.stallUntil)
	e.I64(c.osPenalty)
	e.U64(c.reqID)

	c.onDev.SnapshotTo(e)
	c.offDev.SnapshotTo(e)
	c.onSch.SnapshotTo(e)
	c.offSch.SnapshotTo(e)

	e.Bool(c.mig != nil)
	if c.mig != nil {
		c.mig.SnapshotTo(e)
	}

	c.allLat.SnapshotTo(e)
	c.onLat.SnapshotTo(e)
	c.offLat.SnapshotTo(e)
	c.dramAll.SnapshotTo(e)
	c.dramOn.SnapshotTo(e)
	c.dramOff.SnapshotTo(e)
	c.hist.SnapshotTo(e)
	e.I64(c.coreLatSum)
	e.U64(c.nDone)
	e.I64(c.queueSum)
	e.I64(c.swapBegin)
	e.I64(c.stepBegin)
	e.I64(c.rollBegin)
	e.U64(c.swapMRU)
	e.U64(c.swapVictim)

	// Program accesses waiting in the schedulers, positionally.
	nPending := 0
	snapMeta := func(ch int, r *sched.Request) {
		nPending++
		meta := c.inFlight[r]
		if meta == nil {
			e.Fail(fmt.Errorf("memctrl: request %d queued without access metadata", r.ID))
			return
		}
		e.U64(meta.phys)
		e.U64(meta.machine)
		e.I64(meta.issue)
		e.Bool(meta.region == OnPackage)
		e.Bool(meta.write)
	}
	e.U32(uint32(len(c.inFlight)))
	c.onSch.ForEachPending(snapMeta)
	c.offSch.ForEachPending(snapMeta)
	if nPending != len(c.inFlight) {
		e.Fail(fmt.Errorf("memctrl: %d in-flight accesses but %d queued requests", len(c.inFlight), nPending))
	}

	// Distinct step states shared by the in-flight copy legs. The current
	// step comes first; stale (aborted) steps referenced only by still-queued
	// legs follow in walk order.
	var steps []*stepState
	stepIdx := make(map[*stepState]int)
	stepRef := func(st *stepState) int {
		if st == nil {
			return -1
		}
		if i, ok := stepIdx[st]; ok {
			return i
		}
		stepIdx[st] = len(steps)
		steps = append(steps, st)
		return stepIdx[st]
	}
	stepRef(c.step)
	legs := make([]*legMeta, 0, len(c.bulkMeta))
	collectLeg := func(ch int, j *sched.BulkJob) {
		meta := c.bulkMeta[j]
		if meta == nil {
			e.Fail(fmt.Errorf("memctrl: bulk job %d queued without leg metadata", j.Tag))
			return
		}
		stepRef(meta.step)
		legs = append(legs, meta)
	}
	c.onSch.ForEachBulk(collectLeg)
	c.offSch.ForEachBulk(collectLeg)
	if len(legs) != len(c.bulkMeta) {
		e.Fail(fmt.Errorf("memctrl: %d leg metadata entries but %d queued bulk jobs", len(c.bulkMeta), len(legs)))
	}
	e.U32(uint32(len(steps)))
	for _, st := range steps {
		e.U32(uint32(st.subsLeft))
		e.Bool(st.undo)
		e.Bool(st.aborted)
		e.U32(uint32(len(st.completed)))
		for _, s := range st.completed {
			e.I64(int64(s))
		}
	}
	e.I64(int64(stepRef(c.step)))
	e.U32(uint32(len(legs)))
	for _, meta := range legs {
		snapshotSubCopy(e, meta.sub)
		e.Bool(meta.isRead)
		e.Bool(meta.dstOn)
		e.I64(meta.earliest)
		e.U32(uint32(meta.attempts))
		e.I64(int64(stepIdx[meta.step]))
	}

	e.U32(uint32(len(c.undoQueue)))
	for _, sc := range c.undoQueue {
		snapshotSubCopy(e, sc)
	}
	e.U32(uint32(c.stepAttempts))

	e.Bool(c.inj != nil)
	if c.inj != nil {
		c.inj.SnapshotTo(e)
		c.faultRep.SnapshotTo(e)
		frames := make([]uint64, 0, len(c.frameFaults))
		for f := range c.frameFaults {
			frames = append(frames, f)
		}
		sort.Slice(frames, func(i, j int) bool { return frames[i] < frames[j] })
		e.U32(uint32(len(frames)))
		for _, f := range frames {
			e.U64(f)
			e.U32(uint32(c.frameFaults[f]))
		}
		e.U32(uint32(len(c.retireQueue)))
		for _, s := range c.retireQueue {
			e.I64(int64(s))
		}
		queued := make([]int, 0, len(c.retireQueued))
		for s := range c.retireQueued {
			queued = append(queued, s)
		}
		sort.Ints(queued)
		e.U32(uint32(len(queued)))
		for _, s := range queued {
			e.I64(int64(s))
		}
		e.Bool(c.degradePending)
		e.Bool(c.degradedMode)
	}

	e.Bool(c.cfg.Power != nil)
	if c.cfg.Power != nil {
		c.cfg.Power.SnapshotTo(e)
	}
}

// RestoreFrom reads the state written by SnapshotTo into a controller built
// with the same configuration.
func (c *Controller) RestoreFrom(d *snap.Decoder) error {
	c.now = d.I64()
	c.stallUntil = d.I64()
	c.osPenalty = d.I64()
	c.reqID = d.U64()

	if err := c.onDev.RestoreFrom(d); err != nil {
		return err
	}
	if err := c.offDev.RestoreFrom(d); err != nil {
		return err
	}
	if err := c.onSch.RestoreFrom(d); err != nil {
		return err
	}
	if err := c.offSch.RestoreFrom(d); err != nil {
		return err
	}

	hasMig := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasMig != (c.mig != nil) {
		d.Invalid("migration engine presence mismatch")
		return d.Err()
	}
	if c.mig != nil {
		if err := c.mig.RestoreFrom(d); err != nil {
			return err
		}
	}

	for _, ls := range []interface{ RestoreFrom(*snap.Decoder) error }{
		&c.allLat, &c.onLat, &c.offLat, &c.dramAll, &c.dramOn, &c.dramOff, &c.hist,
	} {
		if err := ls.RestoreFrom(d); err != nil {
			return err
		}
	}
	c.coreLatSum = d.I64()
	c.nDone = d.U64()
	c.queueSum = d.I64()
	c.swapBegin = d.I64()
	c.stepBegin = d.I64()
	c.rollBegin = d.I64()
	c.swapMRU = d.U64()
	c.swapVictim = d.U64()

	nMeta := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	var reqs []*sched.Request
	c.onSch.ForEachPending(func(ch int, r *sched.Request) { reqs = append(reqs, r) })
	c.offSch.ForEachPending(func(ch int, r *sched.Request) { reqs = append(reqs, r) })
	if nMeta != len(reqs) {
		d.Invalid("snapshot has %d access metadata entries for %d queued requests", nMeta, len(reqs))
		return d.Err()
	}
	c.inFlight = make(map[*sched.Request]*accessMeta, nMeta)
	for _, r := range reqs {
		meta := &accessMeta{
			phys:    d.U64(),
			machine: d.U64(),
			issue:   d.I64(),
		}
		if d.Bool() {
			meta.region = OnPackage
		} else {
			meta.region = OffPackage
		}
		meta.write = d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		c.inFlight[r] = meta
	}

	nSteps := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	steps := make([]*stepState, nSteps)
	for i := range steps {
		st := &stepState{
			subsLeft: int(d.U32()),
			undo:     d.Bool(),
			aborted:  d.Bool(),
		}
		ncomp := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		if ncomp > 0 {
			st.completed = make([]int, ncomp)
			for k := range st.completed {
				st.completed[k] = int(d.I64())
			}
		}
		steps[i] = st
	}
	stepAt := func(i int) (*stepState, bool) {
		if i == -1 {
			return nil, true
		}
		if i < 0 || i >= len(steps) {
			d.Invalid("step reference %d out of range (%d steps)", i, len(steps))
			return nil, false
		}
		return steps[i], true
	}
	cur, ok := stepAt(int(d.I64()))
	if !ok {
		return d.Err()
	}
	c.step = cur
	nLegs := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	var jobs []*sched.BulkJob
	c.onSch.ForEachBulk(func(ch int, j *sched.BulkJob) { jobs = append(jobs, j) })
	c.offSch.ForEachBulk(func(ch int, j *sched.BulkJob) { jobs = append(jobs, j) })
	if nLegs != len(jobs) {
		d.Invalid("snapshot has %d leg metadata entries for %d queued bulk jobs", nLegs, len(jobs))
		return d.Err()
	}
	c.bulkMeta = make(map[*sched.BulkJob]*legMeta, nLegs)
	for _, j := range jobs {
		meta := &legMeta{sub: restoreSubCopy(d)}
		meta.isRead = d.Bool()
		meta.dstOn = d.Bool()
		meta.earliest = d.I64()
		meta.attempts = int(d.U32())
		st, ok := stepAt(int(d.I64()))
		if !ok {
			return d.Err()
		}
		meta.step = st
		if d.Err() != nil {
			return d.Err()
		}
		c.bulkMeta[j] = meta
	}

	nUndo := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	c.undoQueue = nil
	for i := 0; i < nUndo; i++ {
		c.undoQueue = append(c.undoQueue, restoreSubCopy(d))
	}
	c.stepAttempts = int(d.U32())

	hasInj := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasInj != (c.inj != nil) {
		d.Invalid("fault injector presence mismatch")
		return d.Err()
	}
	if c.inj != nil {
		if err := c.inj.RestoreFrom(d); err != nil {
			return err
		}
		if err := c.faultRep.RestoreFrom(d); err != nil {
			return err
		}
		nf := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		c.frameFaults = make(map[uint64]int, nf)
		for i := 0; i < nf; i++ {
			f := d.U64()
			c.frameFaults[f] = int(d.U32())
		}
		nr := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		c.retireQueue = nil
		for i := 0; i < nr; i++ {
			c.retireQueue = append(c.retireQueue, int(d.I64()))
		}
		nq := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		c.retireQueued = make(map[int]bool, nq)
		for i := 0; i < nq; i++ {
			c.retireQueued[int(d.I64())] = true
		}
		c.degradePending = d.Bool()
		c.degradedMode = d.Bool()
	}

	hasPower := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasPower != (c.cfg.Power != nil) {
		d.Invalid("power meter presence mismatch")
		return d.Err()
	}
	if c.cfg.Power != nil {
		if err := c.cfg.Power.RestoreFrom(d); err != nil {
			return err
		}
	}
	return d.Err()
}

func snapshotSubCopy(e *snap.Encoder, sc core.SubCopy) {
	e.U64(sc.Src)
	e.U64(sc.Dst)
	e.U64(sc.Bytes)
	e.I64(int64(sc.SubIndex))
	e.Bool(sc.Exchange)
}

func restoreSubCopy(d *snap.Decoder) core.SubCopy {
	var sc core.SubCopy
	sc.Src = d.U64()
	sc.Dst = d.U64()
	sc.Bytes = d.U64()
	sc.SubIndex = int(d.I64())
	sc.Exchange = d.Bool()
	return sc
}
