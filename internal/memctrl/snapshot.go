package memctrl

import (
	"fmt"

	"heteromem/internal/core"
	"heteromem/internal/sched"
	"heteromem/internal/snap"
)

// The controller snapshot captures the whole pipeline between two program
// accesses: clocks, both DRAM devices, both schedulers, the migration
// engine, the latency accumulators, the in-flight copy legs with their
// shared step state, and the fault-response ledger. Access and leg metadata
// live intrusively on the requests/jobs themselves; they are serialized
// positionally in the schedulers' own deterministic walk order (on-package
// first, then off-package) and reattached to the fresh objects the
// scheduler restore materializes. The framing is unchanged from the old
// side-table layout.

// SnapshotTo writes the controller's dynamic state. A controller with a
// latched asynchronous error refuses to snapshot: the checkpoint would
// otherwise silently resurrect a run that already failed.
func (c *Controller) SnapshotTo(e *snap.Encoder) {
	if c.firstErr != nil {
		e.Fail(fmt.Errorf("memctrl: cannot checkpoint a failed controller: %w", c.firstErr))
		return
	}
	e.I64(c.now)
	e.I64(c.stallUntil)
	e.I64(c.osPenalty)
	e.U64(c.reqID)

	c.onDev.SnapshotTo(e)
	c.offDev.SnapshotTo(e)
	c.onSch.SnapshotTo(e)
	c.offSch.SnapshotTo(e)

	e.Bool(c.mig != nil)
	if c.mig != nil {
		c.mig.SnapshotTo(e)
	}

	c.allLat.SnapshotTo(e)
	c.onLat.SnapshotTo(e)
	c.offLat.SnapshotTo(e)
	c.dramAll.SnapshotTo(e)
	c.dramOn.SnapshotTo(e)
	c.dramOff.SnapshotTo(e)
	c.hist.SnapshotTo(e)
	e.I64(c.coreLatSum)
	e.U64(c.nDone)
	e.I64(c.queueSum)
	e.I64(c.swapBegin)
	e.I64(c.stepBegin)
	e.I64(c.rollBegin)
	e.U64(c.swapMRU)
	e.U64(c.swapVictim)

	// Program accesses waiting in the schedulers, positionally. The access
	// metadata lives on the requests themselves, so the walk serializes it
	// in place; the framing matches the old side-table layout exactly.
	snapMeta := func(ch int, r *sched.Request) {
		e.U64(r.Phys)
		e.U64(r.Machine)
		e.I64(r.Issue)
		e.Bool(r.OnPkg)
		e.Bool(r.Write)
		if c.cache != nil {
			// Cache-scheme leg state; the extra fields are gated on the
			// scheme so default-scheme checkpoints stay byte-identical.
			e.U8(r.Stage)
			e.U64(r.Aux)
		}
	}
	e.U32(uint32(c.onSch.QueueLen() + c.offSch.QueueLen()))
	c.onSch.ForEachPending(snapMeta)
	c.offSch.ForEachPending(snapMeta)

	// Distinct step states shared by the in-flight copy legs. The current
	// step comes first; stale (aborted) steps referenced only by still-queued
	// legs follow in walk order.
	var steps []*stepState
	stepIdx := make(map[*stepState]int)
	stepRef := func(st *stepState) int {
		if st == nil {
			return -1
		}
		if i, ok := stepIdx[st]; ok {
			return i
		}
		stepIdx[st] = len(steps)
		steps = append(steps, st)
		return stepIdx[st]
	}
	stepRef(c.step)
	var legs []*legMeta
	var jobKinds []uint8 // per queued bulk job, walk order; 0 = migration leg
	collectLeg := func(ch int, j *sched.BulkJob) {
		if sj, ok := j.Meta.(*schemeJob); ok {
			if c.cache == nil {
				e.Fail(fmt.Errorf("memctrl: scheme job %d queued without a cache scheme", j.Tag))
				return
			}
			jobKinds = append(jobKinds, sj.kind)
			return
		}
		meta, _ := j.Meta.(*legMeta)
		if meta == nil {
			e.Fail(fmt.Errorf("memctrl: bulk job %d queued without leg metadata", j.Tag))
			return
		}
		jobKinds = append(jobKinds, 0)
		stepRef(meta.step)
		legs = append(legs, meta)
	}
	c.onSch.ForEachBulk(collectLeg)
	c.offSch.ForEachBulk(collectLeg)
	e.U32(uint32(len(steps)))
	for _, st := range steps {
		e.U32(uint32(st.subsLeft))
		e.Bool(st.undo)
		e.Bool(st.aborted)
		e.U32(uint32(len(st.completed)))
		for _, s := range st.completed {
			e.I64(int64(s))
		}
	}
	e.I64(int64(stepRef(c.step)))
	e.U32(uint32(len(legs)))
	for _, meta := range legs {
		snapshotSubCopy(e, meta.sub)
		e.Bool(meta.isRead)
		e.Bool(meta.dstOn)
		e.I64(meta.earliest)
		e.U32(uint32(meta.attempts))
		e.I64(int64(stepIdx[meta.step]))
	}
	if c.cache != nil {
		// Which queued bulk job carries which metadata: 0 picks the next
		// migration leg above in order, non-zero a scheme-job sentinel.
		e.U32(uint32(len(jobKinds)))
		for _, k := range jobKinds {
			e.U8(k)
		}
	}

	e.U32(uint32(len(c.undoQueue)))
	for _, sc := range c.undoQueue {
		snapshotSubCopy(e, sc)
	}
	e.U32(uint32(c.stepAttempts))

	e.Bool(c.inj != nil)
	if c.inj != nil {
		c.inj.SnapshotTo(e)
		c.faultRep.SnapshotTo(e)
		// The dense per-frame arrays serialize as sparse sorted entry lists:
		// ascending index order is exactly the sorted-key order the map-backed
		// layout produced, so the framing is unchanged.
		nf := 0
		for _, v := range c.frameFaults {
			if v != 0 {
				nf++
			}
		}
		e.U32(uint32(nf))
		for f, v := range c.frameFaults {
			if v != 0 {
				e.U64(uint64(f))
				e.U32(uint32(v))
			}
		}
		e.U32(uint32(len(c.retireQueue)))
		for _, s := range c.retireQueue {
			e.I64(int64(s))
		}
		nq := 0
		for _, q := range c.retireQueued {
			if q {
				nq++
			}
		}
		e.U32(uint32(nq))
		for s, q := range c.retireQueued {
			if q {
				e.I64(int64(s))
			}
		}
		e.Bool(c.degradePending)
		e.Bool(c.degradedMode)
	}

	e.Bool(c.cfg.Power != nil)
	if c.cfg.Power != nil {
		c.cfg.Power.SnapshotTo(e)
	}

	if c.cache != nil {
		// Scheme state (set array, tag buffer, predictor, stats). Under
		// memcache this is the cache part only: the migrator already rode
		// the mig slot above.
		c.policy.SnapshotTo(e)
	}
}

// RestoreFrom reads the state written by SnapshotTo into a controller built
// with the same configuration.
func (c *Controller) RestoreFrom(d *snap.Decoder) error {
	c.now = d.I64()
	c.stallUntil = d.I64()
	c.osPenalty = d.I64()
	c.reqID = d.U64()

	if err := c.onDev.RestoreFrom(d); err != nil {
		return err
	}
	if err := c.offDev.RestoreFrom(d); err != nil {
		return err
	}
	if err := c.onSch.RestoreFrom(d); err != nil {
		return err
	}
	if err := c.offSch.RestoreFrom(d); err != nil {
		return err
	}

	hasMig := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasMig != (c.mig != nil) {
		d.Invalid("migration engine presence mismatch")
		return d.Err()
	}
	if c.mig != nil {
		if err := c.mig.RestoreFrom(d); err != nil {
			return err
		}
	}

	for _, ls := range []interface{ RestoreFrom(*snap.Decoder) error }{
		&c.allLat, &c.onLat, &c.offLat, &c.dramAll, &c.dramOn, &c.dramOff, &c.hist,
	} {
		if err := ls.RestoreFrom(d); err != nil {
			return err
		}
	}
	c.coreLatSum = d.I64()
	c.nDone = d.U64()
	c.queueSum = d.I64()
	c.swapBegin = d.I64()
	c.stepBegin = d.I64()
	c.rollBegin = d.I64()
	c.swapMRU = d.U64()
	c.swapVictim = d.U64()

	nMeta := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	var reqs []*sched.Request
	c.onSch.ForEachPending(func(ch int, r *sched.Request) { reqs = append(reqs, r) })
	c.offSch.ForEachPending(func(ch int, r *sched.Request) { reqs = append(reqs, r) })
	if nMeta != len(reqs) {
		d.Invalid("snapshot has %d access metadata entries for %d queued requests", nMeta, len(reqs))
		return d.Err()
	}
	for _, r := range reqs {
		r.Phys = d.U64()
		r.Machine = d.U64()
		r.Issue = d.I64()
		r.OnPkg = d.Bool()
		w := d.Bool()
		if d.Err() != nil {
			return d.Err()
		}
		if w != r.Write {
			d.Invalid("request %d write flag disagrees with its metadata", r.ID)
			return d.Err()
		}
		if c.cache != nil {
			r.Stage = d.U8()
			r.Aux = d.U64()
		}
	}

	nSteps := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	steps := make([]*stepState, nSteps)
	for i := range steps {
		st := &stepState{
			subsLeft: int(d.U32()),
			undo:     d.Bool(),
			aborted:  d.Bool(),
		}
		ncomp := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		if ncomp > 0 {
			st.completed = make([]int, ncomp)
			for k := range st.completed {
				st.completed[k] = int(d.I64())
			}
		}
		steps[i] = st
	}
	stepAt := func(i int) (*stepState, bool) {
		if i == -1 {
			return nil, true
		}
		if i < 0 || i >= len(steps) {
			d.Invalid("step reference %d out of range (%d steps)", i, len(steps))
			return nil, false
		}
		return steps[i], true
	}
	cur, ok := stepAt(int(d.I64()))
	if !ok {
		return d.Err()
	}
	c.step = cur
	nLegs := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	var jobs []*sched.BulkJob
	c.onSch.ForEachBulk(func(ch int, j *sched.BulkJob) { jobs = append(jobs, j) })
	c.offSch.ForEachBulk(func(ch int, j *sched.BulkJob) { jobs = append(jobs, j) })
	readLeg := func() (*legMeta, bool) {
		meta := &legMeta{sub: restoreSubCopy(d)}
		meta.isRead = d.Bool()
		meta.dstOn = d.Bool()
		meta.earliest = d.I64()
		meta.attempts = int(d.U32())
		st, ok := stepAt(int(d.I64()))
		if !ok || d.Err() != nil {
			return nil, false
		}
		meta.step = st
		return meta, true
	}
	if c.cache == nil {
		if nLegs != len(jobs) {
			d.Invalid("snapshot has %d leg metadata entries for %d queued bulk jobs", nLegs, len(jobs))
			return d.Err()
		}
		for _, j := range jobs {
			meta, ok := readLeg()
			if !ok {
				return d.Err()
			}
			j.Meta = meta
		}
	} else {
		// Scheme jobs interleave with migration legs; the kinds array maps
		// each queued job (walk order) back to its metadata.
		metas := make([]*legMeta, nLegs)
		for i := range metas {
			meta, ok := readLeg()
			if !ok {
				return d.Err()
			}
			metas[i] = meta
		}
		nKinds := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		if nKinds != len(jobs) {
			d.Invalid("snapshot has %d job kinds for %d queued bulk jobs", nKinds, len(jobs))
			return d.Err()
		}
		li := 0
		for _, j := range jobs {
			kind := d.U8()
			if d.Err() != nil {
				return d.Err()
			}
			if kind == 0 {
				if li >= len(metas) {
					d.Invalid("snapshot names more migration legs than it carries (%d)", nLegs)
					return d.Err()
				}
				j.Meta = metas[li]
				li++
				continue
			}
			sj := c.schemeJobByKind(kind)
			if sj == nil {
				d.Invalid("unknown scheme-job kind %d", kind)
				return d.Err()
			}
			j.Meta = sj
		}
		if li != len(metas) {
			d.Invalid("snapshot carries %d migration legs but names %d", len(metas), li)
			return d.Err()
		}
	}

	nUndo := int(d.U32())
	if d.Err() != nil {
		return d.Err()
	}
	c.undoQueue = nil
	for i := 0; i < nUndo; i++ {
		c.undoQueue = append(c.undoQueue, restoreSubCopy(d))
	}
	c.stepAttempts = int(d.U32())

	hasInj := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasInj != (c.inj != nil) {
		d.Invalid("fault injector presence mismatch")
		return d.Err()
	}
	if c.inj != nil {
		if err := c.inj.RestoreFrom(d); err != nil {
			return err
		}
		if err := c.faultRep.RestoreFrom(d); err != nil {
			return err
		}
		nf := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		for i := range c.frameFaults {
			c.frameFaults[i] = 0
		}
		for i := 0; i < nf; i++ {
			f := d.U64()
			v := int(d.U32())
			if d.Err() != nil {
				return d.Err()
			}
			if f >= uint64(len(c.frameFaults)) {
				d.Invalid("frame-fault entry %d out of range (%d frames)", f, len(c.frameFaults))
				return d.Err()
			}
			c.frameFaults[f] = v
		}
		nr := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		c.retireQueue = nil
		for i := 0; i < nr; i++ {
			c.retireQueue = append(c.retireQueue, int(d.I64()))
		}
		nq := int(d.U32())
		if d.Err() != nil {
			return d.Err()
		}
		for i := range c.retireQueued {
			c.retireQueued[i] = false
		}
		for i := 0; i < nq; i++ {
			s := d.I64()
			if d.Err() != nil {
				return d.Err()
			}
			if s < 0 || s >= int64(len(c.retireQueued)) {
				d.Invalid("retire-queued slot %d out of range (%d slots)", s, len(c.retireQueued))
				return d.Err()
			}
			c.retireQueued[s] = true
		}
		c.degradePending = d.Bool()
		c.degradedMode = d.Bool()
	}

	hasPower := d.Bool()
	if d.Err() != nil {
		return d.Err()
	}
	if hasPower != (c.cfg.Power != nil) {
		d.Invalid("power meter presence mismatch")
		return d.Err()
	}
	if c.cfg.Power != nil {
		if err := c.cfg.Power.RestoreFrom(d); err != nil {
			return err
		}
	}

	if c.cache != nil {
		if err := c.policy.RestoreFrom(d); err != nil {
			return err
		}
	}
	return d.Err()
}

// schemeJobByKind resolves a checkpoint kind tag to the controller's
// sentinel (nil for an unknown tag).
func (c *Controller) schemeJobByKind(k uint8) *schemeJob {
	switch k {
	case sjKindFill:
		return c.sjFill
	case sjKindWB:
		return c.sjWB
	case sjKindVictimRd:
		return c.sjVictimRd
	case sjKindProbe:
		return c.sjProbe
	case sjKindWasted:
		return c.sjWasted
	}
	return nil
}

func snapshotSubCopy(e *snap.Encoder, sc core.SubCopy) {
	e.U64(sc.Src)
	e.U64(sc.Dst)
	e.U64(sc.Bytes)
	e.I64(int64(sc.SubIndex))
	e.Bool(sc.Exchange)
}

func restoreSubCopy(d *snap.Decoder) core.SubCopy {
	var sc core.SubCopy
	sc.Src = d.U64()
	sc.Dst = d.U64()
	sc.Bytes = d.U64()
	sc.SubIndex = int(d.I64())
	sc.Exchange = d.Bool()
	return sc
}
