package memctrl

// Fault responses: instead of latching firstErr, the controller answers
// injected faults (internal/fault) with graceful degradation, in escalating
// order of severity:
//
//  1. bounded retry — a faulted DRAM burst or copy leg is rescheduled after
//     an exponential cycle-domain backoff; the faulted attempt's bus time
//     has already been paid.
//  2. abort-and-rollback — a swap whose copy traffic exhausts the retry
//     budget is unwound: already-moved data is copied back in reverse order
//     and the translation table is restored to its swap-start snapshot (the
//     P-bit protocol keeps every page reachable throughout).
//  3. slot retirement — an on-package frame that keeps faulting is taken
//     out of service at the next quiescent point: its data is evacuated to
//     a spare frame past Ω and the slot is pinned out of victim selection
//     forever, shrinking the effective N by one.
//  4. degraded mode — once the fault budget is exhausted, migration is
//     disabled entirely; the current mapping stays live and the machine
//     keeps running on a static (slower, but correct) configuration.
//
// Every injected fault is accounted to exactly one disposition (Retried,
// RolledBack, Retired, or Degraded), and Flush verifies the ledger balances
// against the injector's own count.

import (
	"fmt"

	"heteromem/internal/fault"
	"heteromem/internal/obs"
	"heteromem/internal/sched"
)

// copyVerdict is the decided response to one faulted copy leg.
type copyVerdict int

const (
	verdictRetry  copyVerdict = iota // reschedule the leg after backoff
	verdictAccept                    // treat the leg as delivered anyway
	verdictAbort                     // give up: roll back (or abandon the undo)
)

// account books one fault against its disposition.
func (c *Controller) account(p fault.Point, d fault.Disposition) {
	c.faultRep.Account(p, d)
}

// overDegradeBudget reports whether the total injected-fault count has
// crossed the configured degradation budget (0 disables the budget).
func (c *Controller) overDegradeBudget() bool {
	b := c.inj.DegradeBudget()
	return b > 0 && !c.degradedMode && !c.degradePending && c.inj.Faults() >= uint64(b)
}

// requestDegrade freezes migration as soon as the pipeline quiesces: now if
// nothing is in flight, otherwise once the current swap drains.
func (c *Controller) requestDegrade(cycle int64) {
	if c.degradedMode || c.degradePending {
		return
	}
	if c.mig != nil && (c.mig.SwapInFlight() || c.step != nil) {
		c.degradePending = true
		return
	}
	c.enterDegraded(cycle)
}

// enterDegraded permanently disables migration. The current mapping stays
// live — this is an observable mode change, not an error.
func (c *Controller) enterDegraded(cycle int64) {
	c.degradedMode = true
	c.degradePending = false
	if c.mig != nil {
		c.mig.Degrade()
	}
	c.inst.ring.Emit(cycle, obs.EvDegrade, c.inj.Faults(), 0, 0)
	c.inst.spans.Mark(obs.LaneFault, obs.MarkDegrade, cycle, c.inj.Faults(), 0, 0)
}

// canRetire reports whether slot s is a valid, not-yet-handled retirement
// candidate.
func (c *Controller) canRetire(s int) bool {
	if c.mig == nil || c.degradedMode || s < 0 || uint64(s) >= c.mig.Table().Slots() {
		return false
	}
	return !c.retireQueued[s] && !c.mig.Table().Retired(s)
}

// frameFault books one fault against an on-package frame and reports the
// cumulative count. Frames are machine-page indices below OnPackageSlots,
// so the ledger is a dense per-frame array.
func (c *Controller) frameFault(frame uint64) int {
	if frame >= uint64(len(c.frameFaults)) {
		return 0
	}
	c.frameFaults[frame]++
	return c.frameFaults[frame]
}

// queueRetire marks slot s for evacuation at the next quiescent point.
func (c *Controller) queueRetire(s int) {
	c.retireQueued[s] = true
	c.retireQueue = append(c.retireQueue, s)
}

// serviceQuiescent runs the deferred fault responses that need a quiescent
// migration pipeline: queued slot retirements first, then a pending
// degrade. Safe to call anywhere; it bails while a swap or rollback is in
// flight.
func (c *Controller) serviceQuiescent(cycle int64) {
	if c.inj == nil {
		return
	}
	if c.mig != nil && (c.mig.SwapInFlight() || c.step != nil) {
		return
	}
	for len(c.retireQueue) > 0 {
		s := c.retireQueue[0]
		c.retireQueue = c.retireQueue[1:]
		c.execRetire(s, cycle)
	}
	if c.degradePending {
		c.enterDegraded(cycle)
	}
}

// execRetire evacuates slot s synchronously (the ordered copies from
// core.Migrator.RetireSlot run back-to-back on their channels) and audits
// the resulting table. Evacuation copies are not fault-probed: a real
// controller would scrub them with a verified read-retry path.
func (c *Controller) execRetire(s int, cycle int64) {
	copies, err := c.mig.RetireSlot(s)
	if err != nil {
		c.fail(err)
		return
	}
	at := cycle
	for _, sc := range copies {
		srcOn := c.regionOfMachine(sc.Src)
		dstOn := c.regionOfMachine(sc.Dst)
		at = c.reserve(srcOn, sc.Src, at, c.subDuration(srcOn, sc.Bytes, false))
		at = c.reserve(dstOn, sc.Dst, at, c.subDuration(dstOn, sc.Bytes, false))
		if c.cfg.Power != nil {
			c.cfg.Power.Copy(srcOn, dstOn, sc.Bytes, false)
		}
		c.inst.copySubs.Inc()
		c.inst.copyBytes.Add(sc.Bytes)
	}
	spare, _ := c.mig.Table().ExiledTo(uint64(s))
	c.inst.ring.Emit(at, obs.EvRetire, uint64(s), spare, 0)
	c.inst.spans.Span(obs.LaneFault, obs.SpanRetire, cycle, at, uint64(s), spare, 0)
	if !c.mig.CanSwap() && !c.degradedMode {
		// The retired slot was the empty row: the N-1/Live designs have no
		// structural room left to swap.
		c.enterDegraded(at)
	}
	c.auditAt(at, true)
}

// reserve books dur bus cycles for a bulk copy touching the given machine
// address, on the channel its macro page belongs to.
func (c *Controller) reserve(on bool, machine uint64, at, dur int64) int64 {
	page := machine / c.cfg.Geometry.MacroPageSize
	if on {
		return c.onDev.ReserveBus(int(page%uint64(c.cfg.Geometry.OnChannels)), at, dur)
	}
	return c.offDev.ReserveBus(int(page%uint64(c.cfg.Geometry.OffChannels)), at, dur)
}

// deviceFault decides the response to one faulted program-access burst;
// it is the scheduler's fault handler. The returned backoff applies only
// when retry is true.
func (c *Controller) deviceFault(r *sched.Request, region Region) (retry bool, backoff int64) {
	c.inst.ring.Emit(c.now, obs.EvFault, uint64(fault.PointDevice), r.Addr, uint64(r.Attempts))
	c.inst.spans.Mark(obs.LaneFault, obs.MarkFault, c.now, uint64(fault.PointDevice), r.Addr, uint64(r.Attempts))
	if c.degradedMode {
		// Static fallback mode absorbs faults: deliver what the frame holds.
		c.account(fault.PointDevice, fault.Degraded)
		return false, 0
	}
	if region == OnPackage && c.mig != nil {
		frame := r.Addr / c.cfg.Geometry.MacroPageSize
		if c.frameFault(frame) >= c.inj.RetireAfter() && c.canRetire(int(frame)) {
			// The frame keeps failing: deliver this access as-is and
			// evacuate the slot at the next quiescent point.
			c.account(fault.PointDevice, fault.Retired)
			c.queueRetire(int(frame))
			return false, 0
		}
	}
	if c.overDegradeBudget() {
		c.account(fault.PointDevice, fault.Degraded)
		c.requestDegrade(c.now)
		return false, 0
	}
	if r.Attempts < c.inj.RetryBudget() {
		c.account(fault.PointDevice, fault.Retried)
		backoff = c.retry.Delay(r.Attempts + 1)
		c.inst.ring.Emit(c.now, obs.EvFaultRetry, uint64(fault.PointDevice), uint64(r.Attempts+1), uint64(backoff))
		c.inst.spans.Span(obs.LaneFault, obs.SpanBackoff, c.now, c.now+backoff, uint64(fault.PointDevice), uint64(r.Attempts+1), 0)
		return true, backoff
	}
	// Retry budget exhausted on a single access: the frame is not coming
	// back. Deliver what it holds and stop trusting migration.
	c.account(fault.PointDevice, fault.Degraded)
	c.requestDegrade(c.now)
	return false, 0
}

// copyFaultVerdict classifies one faulted copy leg. isWrite/dst/dstOn
// describe the leg, attempts its prior faults, undo whether it belongs to a
// rollback.
func (c *Controller) copyFaultVerdict(isWrite bool, dst uint64, dstOn bool, attempts int, undo bool, cycle int64) copyVerdict {
	if c.degradedMode {
		c.account(fault.PointCopy, fault.Degraded)
		return verdictAccept
	}
	if isWrite && dstOn && c.mig != nil {
		frame := dst / c.cfg.Geometry.MacroPageSize
		if c.frameFault(frame) >= c.inj.RetireAfter() && c.canRetire(int(frame)) {
			c.account(fault.PointCopy, fault.Retired)
			c.queueRetire(int(frame))
			return verdictRetry // the leg still has to land; evacuation follows
		}
	}
	if c.overDegradeBudget() {
		c.account(fault.PointCopy, fault.Degraded)
		c.requestDegrade(cycle)
		return verdictRetry // let the swap finish, then freeze
	}
	if attempts < c.inj.RetryBudget() {
		c.account(fault.PointCopy, fault.Retried)
		return verdictRetry
	}
	if undo {
		// The undo path itself is failing: restore the mapping without the
		// remaining copies and freeze migration.
		c.account(fault.PointCopy, fault.Degraded)
		return verdictAbort
	}
	c.account(fault.PointCopy, fault.RolledBack)
	return verdictAbort
}

// retryLeg reschedules a faulted bulk leg after its backoff, reusing the
// leg's metadata record on a fresh (pooled) job.
func (c *Controller) retryLeg(meta *legMeta, j *sched.BulkJob) {
	meta.attempts++
	retry := c.newBulkJob()
	retry.Tag = j.Tag
	retry.Duration = j.Duration
	retry.Earliest = j.Done + c.retry.Delay(meta.attempts)
	retry.Meta = meta
	c.inst.ring.Emit(j.Done, obs.EvFaultRetry, uint64(fault.PointCopy), uint64(meta.attempts), uint64(retry.Earliest-j.Done))
	c.inst.spans.Span(obs.LaneFault, obs.SpanBackoff, j.Done, retry.Earliest, uint64(fault.PointCopy), uint64(meta.attempts), 0)
	c.freeBulkJob(j)
	if meta.isRead {
		c.submitBulk(c.regionOfMachine(meta.sub.Src), meta.sub.Src, retry)
	} else {
		c.submitBulk(meta.dstOn, meta.sub.Dst, retry)
	}
}

// stepFaultVerdict classifies one faulted step completion: redo re-runs the
// step's copies, abort rolls the swap back, neither accepts the step.
func (c *Controller) stepFaultVerdict(cycle int64) (redo, abort bool) {
	if c.degradedMode {
		c.account(fault.PointBulk, fault.Degraded)
		return false, false
	}
	if c.overDegradeBudget() {
		// Accept the completion, let the swap finish, then freeze.
		c.account(fault.PointBulk, fault.Degraded)
		c.requestDegrade(cycle)
		return false, false
	}
	if c.stepAttempts < c.inj.RetryBudget() {
		c.stepAttempts++
		c.account(fault.PointBulk, fault.Retried)
		c.inst.ring.Emit(cycle, obs.EvFaultRetry, uint64(fault.PointBulk), uint64(c.stepAttempts), 0)
		return true, false
	}
	c.account(fault.PointBulk, fault.RolledBack)
	return false, true
}

// stepFault handles a faulted step completion on the background (N-1/Live)
// path; true means the normal StepDone chain must not run.
func (c *Controller) stepFault(cycle int64) bool {
	c.inst.ring.Emit(cycle, obs.EvFault, uint64(fault.PointBulk), 0, uint64(c.stepAttempts))
	c.inst.spans.Mark(obs.LaneFault, obs.MarkFault, cycle, uint64(fault.PointBulk), 0, uint64(c.stepAttempts))
	redo, abort := c.stepFaultVerdict(cycle)
	if abort {
		c.abortSwap(c.step, cycle)
		return true
	}
	if !redo {
		return false
	}
	subs, err := c.mig.RestartStep()
	if err != nil {
		c.fail(err)
		c.step = nil
		return true
	}
	c.step = &stepState{subsLeft: len(subs)}
	for _, sc := range subs {
		c.enqueueReadLeg(sc, cycle)
	}
	return true
}

// abortSwap starts the rollback of the in-flight swap: the current step's
// remaining legs become stale, the migrator hands back the ordered undo
// traffic, and the undo copies run one at a time (each is a mini-step, so
// their strict ordering — later steps first — is preserved).
func (c *Controller) abortSwap(st *stepState, cycle int64) {
	if st != nil {
		st.aborted = true
	}
	mru, victim, _, _, _ := c.mig.CurrentPlan()
	var partial []int
	if st != nil {
		partial = st.completed
	}
	undo, err := c.mig.AbortSwap(partial)
	if err != nil {
		c.fail(err)
		c.step = nil
		return
	}
	c.inst.ring.Emit(cycle, obs.EvSwapAbort, mru, uint64(victim), uint64(len(undo)))
	c.rollBegin = cycle
	c.undoQueue = undo
	c.step = nil
	c.startNextUndo(cycle)
}

// startNextUndo launches the next undo copy, or finishes the rollback when
// none remain.
func (c *Controller) startNextUndo(cycle int64) {
	if len(c.undoQueue) == 0 {
		c.finishRollback(cycle)
		return
	}
	sc := c.undoQueue[0]
	c.undoQueue = c.undoQueue[1:]
	c.step = &stepState{subsLeft: 1, undo: true}
	c.enqueueReadLeg(sc, cycle)
}

// finishRollback restores the swap-start table snapshot once the undo
// traffic has drained.
func (c *Controller) finishRollback(cycle int64) {
	mru, _, _, _, _ := c.mig.CurrentPlan()
	if err := c.mig.RollbackDone(); err != nil {
		c.fail(err)
		c.step = nil
		return
	}
	c.step = nil
	c.inst.ring.Emit(cycle, obs.EvRollbackDone, mru, 0, 0)
	c.inst.spans.Span(obs.LaneFault, obs.SpanRollback, c.rollBegin, cycle, mru, 0, 0)
	c.auditAt(cycle, true)
	c.serviceQuiescent(cycle)
}

// abandonUndo gives up on a rollback whose own undo copies keep faulting:
// the table snapshot is still restored (the mapping stays consistent; the
// simulator does not model the unrecoverable data) and migration freezes.
func (c *Controller) abandonUndo(cycle int64) {
	if c.step != nil {
		c.step.aborted = true
	}
	c.undoQueue = nil
	mru, _, _, _, _ := c.mig.CurrentPlan()
	if err := c.mig.RollbackDone(); err != nil {
		c.fail(err)
		c.step = nil
		return
	}
	c.step = nil
	c.inst.ring.Emit(cycle, obs.EvRollbackDone, mru, 1, 0)
	c.inst.spans.Span(obs.LaneFault, obs.SpanRollback, c.rollBegin, cycle, mru, 1, 0)
	c.requestDegrade(cycle)
	c.auditAt(cycle, true)
	c.serviceQuiescent(cycle)
}

// stalledRollback is the synchronous (N design) version of
// abort-and-rollback: undo copies run back-to-back on their channels, each
// still subject to copy-leg fault probes; if the undo itself exhausts its
// retries the rollback is abandoned into degraded mode.
func (c *Controller) stalledRollback(partial []int, cycle int64) error {
	mru, victim, _, _, _ := c.mig.CurrentPlan()
	undo, err := c.mig.AbortSwap(partial)
	if err != nil {
		return err
	}
	c.inst.ring.Emit(cycle, obs.EvSwapAbort, mru, uint64(victim), uint64(len(undo)))
	at := cycle
	abandoned := false
undoLoop:
	for _, sc := range undo {
		srcOn := c.regionOfMachine(sc.Src)
		dstOn := c.regionOfMachine(sc.Dst)
		rd := c.subDuration(srcOn, sc.Bytes, sc.Exchange)
		wd := c.subDuration(dstOn, sc.Bytes, sc.Exchange)
		attempts := 0
		legStart := at
		for {
			readDone := c.reserve(srcOn, sc.Src, legStart, rd)
			writeDone := c.reserve(dstOn, sc.Dst, readDone, wd)
			at = writeDone
			if c.inj == nil || !c.inj.Fault(fault.PointCopy) {
				break
			}
			c.inst.ring.Emit(at, obs.EvFault, uint64(fault.PointCopy), sc.Dst, uint64(attempts))
			c.inst.spans.Mark(obs.LaneFault, obs.MarkFault, at, uint64(fault.PointCopy), sc.Dst, uint64(attempts))
			switch c.copyFaultVerdict(true, sc.Dst, dstOn, attempts, true, at) {
			case verdictAbort:
				abandoned = true
				break undoLoop
			case verdictAccept:
				break
			case verdictRetry:
				attempts++
				legStart = at + c.retry.Delay(attempts)
				c.inst.ring.Emit(at, obs.EvFaultRetry, uint64(fault.PointCopy), uint64(attempts), uint64(legStart-at))
				c.inst.spans.Span(obs.LaneFault, obs.SpanBackoff, at, legStart, uint64(fault.PointCopy), uint64(attempts), 0)
				continue
			}
			break
		}
		c.inst.copySubs.Inc()
		c.inst.copyBytes.Add(sc.Bytes)
	}
	if err := c.mig.RollbackDone(); err != nil {
		return err
	}
	c.inst.ring.Emit(at, obs.EvRollbackDone, mru, boolToU64(abandoned), 0)
	c.inst.spans.Span(obs.LaneFault, obs.SpanRollback, cycle, at, mru, boolToU64(abandoned), 0)
	if abandoned {
		c.requestDegrade(at)
	}
	c.auditAt(at, true)
	if c.stallUntil < at {
		c.stallUntil = at
	}
	c.serviceQuiescent(at)
	return c.firstErr
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// FaultReport assembles the fault-handling ledger; nil when injection is
// off, so fault-free results stay byte-identical.
func (c *Controller) FaultReport() *fault.Report {
	if c.inj == nil {
		return nil
	}
	r := c.faultRep
	r.Injected = c.inj.Faults()
	if c.mig != nil {
		st := c.mig.Stats()
		r.SwapsRolledBack = st.SwapsRolledBack
		r.SlotsRetired = st.SlotsRetired
	}
	r.DegradedMode = c.degradedMode
	return &r
}

// checkFaultLedger verifies at flush time that every injected fault was
// accounted to exactly one disposition.
func (c *Controller) checkFaultLedger() {
	if c.inj == nil || c.firstErr != nil {
		return
	}
	rep := c.FaultReport()
	if !rep.Balanced(c.inj.Faults()) {
		c.fail(fmt.Errorf(
			"memctrl: fault ledger unbalanced: injected=%d (device=%d copy=%d bulk=%d) vs retried=%d rolledBack=%d retired=%d degraded=%d",
			c.inj.Faults(), rep.DeviceFaults, rep.CopyFaults, rep.BulkFaults,
			rep.Retried, rep.RolledBack, rep.Retired, rep.Degraded))
	}
}
