package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"heteromem/internal/flog"
	"heteromem/internal/rng"
)

// Chaos campaign: workers are real OS processes that get SIGKILLed mid-cell
// on a seeded schedule. The contract under test is the PR's acceptance
// criterion — after at least three hard kills with takeover, the sweep's
// per-cell results are byte-identical to an uninterrupted single-process
// sweep, and the manifest holds every cell exactly once.
//
// Seed via CHAOS_SEED (make chaos); unset defaults to a fixed seed so the
// plain test run is reproducible.

const (
	chaosHelperEnv  = "DSWEEP_CHAOS_HELPER"
	chaosAddrEnv    = "DSWEEP_COORD_ADDR"
	chaosNameEnv    = "DSWEEP_WORKER_NAME"
	chaosJournalEnv = "DSWEEP_CHAOS_JOURNAL"
)

// chaosJournal opens the shared campaign journal for appending. Every
// process — coordinator and each worker — appends whole lines with single
// write(2) calls on an O_APPEND fd, so records interleave without tearing
// even when the writer is SIGKILLed between lines.
func chaosJournal(t *testing.T, path, role, node string) (*flog.Journal, *os.File) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("chaos journal: %v", err)
	}
	return flog.New(f, role, node), f
}

// TestChaosWorkerHelper is not a test: it is the worker-process body,
// re-executed from the test binary by TestChaosKillAndTakeover. It only
// runs when the helper env var is set.
func TestChaosWorkerHelper(t *testing.T) {
	if os.Getenv(chaosHelperEnv) != "1" {
		t.Skip("worker-process helper, driven by TestChaosKillAndTakeover")
	}
	var journal *flog.Journal
	if path := os.Getenv(chaosJournalEnv); path != "" {
		j, f := chaosJournal(t, path, "worker", os.Getenv(chaosNameEnv))
		journal = j
		defer f.Close()
	}
	err := RunWorker(context.Background(), os.Getenv(chaosAddrEnv), WorkerConfig{
		Name:         os.Getenv(chaosNameEnv),
		DialAttempts: 5,
		Journal:      journal,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos worker: %v\n", err)
		os.Exit(3)
	}
}

func TestChaosKillAndTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign spawns and kills worker processes; skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d", seed)
	r := rng.New(seed | 1)

	// Cells sized so one takes noticeably longer than a kill interval:
	// every SIGKILL lands mid-cell with high probability, and progress
	// accrues across takeovers only through checkpoint resume.
	// Note the designs: basic design N is avoided here because its
	// stall-the-world swaps make some workloads orders of magnitude slower
	// in wall time, starving the checkpoint-paced heartbeats past any
	// reasonable lease TTL.
	// The alloy cell exercises a non-default scheme under fire: its cache
	// state (set array, predictor counters) and in-flight scheme jobs must
	// survive checkpoint takeover byte-identically like the migration state.
	cells := []CellSpec{
		{Workload: "pgbench", Seed: 11, Design: "live", Interval: 1000, Records: 4_000_000, Warmup: 500_000},
		{Workload: "indexer", Seed: 12, Design: "n-1", Interval: 1000, Records: 4_000_000, Warmup: 500_000},
		{Workload: "FT", Seed: 13, Design: "live", Interval: 1000, Records: 4_000_000},
		{Workload: "SPECjbb", Seed: 14, Design: "none", Scheme: "alloy-pred", Records: 4_000_000, Warmup: 500_000},
	}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")
	// The campaign journal: CHAOS_JOURNAL pins it to a stable path (CI
	// uploads it as an artifact on failure); unset, it lives in the temp
	// dir. Coordinator and every worker process append to the same file.
	journalPath := os.Getenv("CHAOS_JOURNAL")
	if journalPath == "" {
		journalPath = filepath.Join(dir, "chaos.journal")
	} else if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
		t.Fatalf("clearing stale chaos journal: %v", err)
	}
	journal, journalFile := chaosJournal(t, journalPath, "coordinator", "chaos-coord")
	defer journalFile.Close()
	ctx := context.Background()
	var logf func(string, ...any)
	if os.Getenv("CHAOS_VERBOSE") != "" {
		logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[coord] "+f+"\n", a...) }
	}
	coord, addr, wait := startCoordinator(t, ctx, CoordinatorConfig{
		Cells:    cells,
		Manifest: openManifest(t, manifestPath),
		SpillDir: dir,
		// Every kill burns an attempt on the victim's cell; the campaign
		// must never exhaust a cell into permanent failure.
		MaxAttempts: 1000,
		LeaseTTL:    10 * time.Second,
		Logf:        logf,
		Journal:     journal,
	})

	spawn := func(name string) *exec.Cmd {
		cmd := exec.Command(bin, "-test.run", "^TestChaosWorkerHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			chaosHelperEnv+"=1",
			chaosAddrEnv+"="+addr,
			chaosNameEnv+"="+name,
			chaosJournalEnv+"="+journalPath,
		)
		if os.Getenv("CHAOS_VERBOSE") != "" {
			cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning worker process: %v", err)
		}
		return cmd
	}

	// Kill loop: spawn a worker, let it run 150-500ms, SIGKILL it. Repeat
	// until at least 3 kills landed while the worker held a lease (a real
	// mid-cell takeover) or the spawn budget runs out.
	const wantTakeovers = 3
	kills := 0
	for spawns := 0; spawns < 40; spawns++ {
		s := coord.Stats()
		if s.Takeovers >= wantTakeovers {
			break
		}
		if s.Completed+s.Skipped == len(cells) {
			break // sweep finished under fire before enough takeovers
		}
		cmd := spawn(fmt.Sprintf("victim-%d", spawns))
		delay := 150*time.Millisecond + time.Duration(r.Intn(350))*time.Millisecond
		time.Sleep(delay)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("SIGKILL worker: %v", err)
		}
		_ = cmd.Wait() // reap; exit status is necessarily non-zero
		kills++
	}
	if got := coord.Stats().Takeovers; got < wantTakeovers {
		t.Fatalf("only %d takeovers after %d SIGKILLs; the campaign never got its %d mid-cell kills",
			got, kills, wantTakeovers)
	}
	t.Logf("%d SIGKILLs, %d takeovers; letting survivors finish", kills, coord.Stats().Takeovers)

	// Survivors: two clean worker processes run the sweep to completion.
	finishers := []*exec.Cmd{spawn("survivor-0"), spawn("survivor-1")}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for _, cmd := range finishers {
		if err := cmd.Wait(); err != nil {
			t.Errorf("surviving worker exited with: %v", err)
		}
	}

	s := coord.Stats()
	t.Logf("final stats: %+v", s)
	if s.Failed != 0 {
		t.Fatalf("%d cells failed permanently", s.Failed)
	}

	// The chaos contract: byte-identical to the uninterrupted run, every
	// cell exactly once.
	assertSweepMatchesDirect(t, manifestPath, cells)

	// The journal contract: the journal alone must tell the true story of
	// the campaign — every SIGKILL visible as an expiry/revocation followed
	// by a takeover chain that ends in completion, exactly-once completion
	// per cell, and counters that agree with the coordinator's own stats.
	assertJournalTellsTheStory(t, journalPath, cells, s)
}

// assertJournalTellsTheStory re-derives the campaign's history from the
// shared journal file with no help from in-process state, and checks it
// against the coordinator's stats and the exactly-once contract.
func assertJournalTellsTheStory(t *testing.T, journalPath string, cells []CellSpec, s Stats) {
	t.Helper()
	jf, err := os.Open(journalPath)
	if err != nil {
		t.Fatalf("opening chaos journal: %v", err)
	}
	recs, err := flog.Read(jf)
	jf.Close()
	if err != nil {
		t.Fatalf("chaos journal unreadable: %v", err)
	}

	// Exactly-once from the journal alone: one cell-completed record per
	// cell key, no more, no fewer. Duplicate deliveries must appear as
	// cell-duplicate records, never as a second completion.
	cellDone := map[string]bool{} // cell label -> completed
	leaseCell := map[uint64]string{}
	for _, r := range recs {
		if r.Role != "coordinator" {
			continue
		}
		switch r.Event {
		case flog.EvLeased:
			leaseCell[r.Lease] = r.Cell
		case flog.EvCompleted:
			cell := leaseCell[r.Lease]
			if cellDone[cell] {
				t.Errorf("journal shows cell %s completed twice", cell)
			}
			cellDone[cell] = true
		}
	}
	for _, c := range cells {
		if !cellDone[c.Label()] {
			t.Errorf("journal has no completion for cell %s", c.Label())
		}
	}

	// The reconstruction the operator actually uses (hmreport -fleet) must
	// agree with the coordinator's stats: every takeover in the journal,
	// every chain ending in completion, nothing abandoned.
	fleet := flog.BuildFleet(recs)
	if len(fleet.Cells) != len(cells) {
		t.Errorf("journal reconstructs %d cells, want %d", len(fleet.Cells), len(cells))
	}
	for _, c := range fleet.Cells {
		if !c.Completed || c.Abandoned {
			t.Errorf("cell %s: journal chain does not end in completion (completed=%v abandoned=%v, %d attempts)",
				c.Cell, c.Completed, c.Abandoned, len(c.Attempts))
		}
	}
	if got := fleet.Expiries + fleet.Revocations; got != s.Takeovers {
		t.Errorf("journal shows %d takeovers (%d expiries + %d revocations), coordinator counted %d",
			got, fleet.Expiries, fleet.Revocations, s.Takeovers)
	}
	if fleet.Expiries != s.Expiries {
		t.Errorf("journal shows %d expiries, coordinator counted %d", fleet.Expiries, s.Expiries)
	}
	if fleet.BadResumes != s.BadResumes {
		t.Errorf("journal shows %d bad resumes, coordinator counted %d", fleet.BadResumes, s.BadResumes)
	}
	// The journal also records duplicates detected on stale-lease
	// completions, which the manifest ledger never sees — so >=, not ==.
	if fleet.Duplicates < s.Duplicates {
		t.Errorf("journal shows %d duplicates, coordinator counted %d", fleet.Duplicates, s.Duplicates)
	}

	// And the timeline those records assemble into must be loadable Chrome
	// trace JSON with a lane per worker.
	var buf bytes.Buffer
	if err := fleet.WriteTrace(&buf); err != nil {
		t.Fatalf("fleet timeline: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("fleet timeline is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("fleet timeline is empty")
	}
	t.Logf("journal: %d records, %d expiries, %d revocations, %d bad-resumes, %d duplicates",
		len(recs), fleet.Expiries, fleet.Revocations, fleet.BadResumes, fleet.Duplicates)
}
