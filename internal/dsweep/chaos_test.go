package dsweep

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"heteromem/internal/rng"
)

// Chaos campaign: workers are real OS processes that get SIGKILLed mid-cell
// on a seeded schedule. The contract under test is the PR's acceptance
// criterion — after at least three hard kills with takeover, the sweep's
// per-cell results are byte-identical to an uninterrupted single-process
// sweep, and the manifest holds every cell exactly once.
//
// Seed via CHAOS_SEED (make chaos); unset defaults to a fixed seed so the
// plain test run is reproducible.

const (
	chaosHelperEnv = "DSWEEP_CHAOS_HELPER"
	chaosAddrEnv   = "DSWEEP_COORD_ADDR"
	chaosNameEnv   = "DSWEEP_WORKER_NAME"
)

// TestChaosWorkerHelper is not a test: it is the worker-process body,
// re-executed from the test binary by TestChaosKillAndTakeover. It only
// runs when the helper env var is set.
func TestChaosWorkerHelper(t *testing.T) {
	if os.Getenv(chaosHelperEnv) != "1" {
		t.Skip("worker-process helper, driven by TestChaosKillAndTakeover")
	}
	err := RunWorker(context.Background(), os.Getenv(chaosAddrEnv), WorkerConfig{
		Name:         os.Getenv(chaosNameEnv),
		DialAttempts: 5,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos worker: %v\n", err)
		os.Exit(3)
	}
}

func TestChaosKillAndTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaign spawns and kills worker processes; skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(1)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d", seed)
	r := rng.New(seed | 1)

	// Cells sized so one takes noticeably longer than a kill interval:
	// every SIGKILL lands mid-cell with high probability, and progress
	// accrues across takeovers only through checkpoint resume.
	// Note the designs: basic design N is avoided here because its
	// stall-the-world swaps make some workloads orders of magnitude slower
	// in wall time, starving the checkpoint-paced heartbeats past any
	// reasonable lease TTL.
	cells := []CellSpec{
		{Workload: "pgbench", Seed: 11, Design: "live", Interval: 1000, Records: 4_000_000, Warmup: 500_000},
		{Workload: "indexer", Seed: 12, Design: "n-1", Interval: 1000, Records: 4_000_000, Warmup: 500_000},
		{Workload: "FT", Seed: 13, Design: "live", Interval: 1000, Records: 4_000_000},
	}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")
	ctx := context.Background()
	var logf func(string, ...any)
	if os.Getenv("CHAOS_VERBOSE") != "" {
		logf = func(f string, a ...any) { fmt.Fprintf(os.Stderr, "[coord] "+f+"\n", a...) }
	}
	coord, addr, wait := startCoordinator(t, ctx, CoordinatorConfig{
		Cells:    cells,
		Manifest: openManifest(t, manifestPath),
		SpillDir: dir,
		// Every kill burns an attempt on the victim's cell; the campaign
		// must never exhaust a cell into permanent failure.
		MaxAttempts: 1000,
		LeaseTTL:    10 * time.Second,
		Logf:        logf,
	})

	spawn := func(name string) *exec.Cmd {
		cmd := exec.Command(bin, "-test.run", "^TestChaosWorkerHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			chaosHelperEnv+"=1",
			chaosAddrEnv+"="+addr,
			chaosNameEnv+"="+name,
		)
		if os.Getenv("CHAOS_VERBOSE") != "" {
			cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawning worker process: %v", err)
		}
		return cmd
	}

	// Kill loop: spawn a worker, let it run 150-500ms, SIGKILL it. Repeat
	// until at least 3 kills landed while the worker held a lease (a real
	// mid-cell takeover) or the spawn budget runs out.
	const wantTakeovers = 3
	kills := 0
	for spawns := 0; spawns < 40; spawns++ {
		s := coord.Stats()
		if s.Takeovers >= wantTakeovers {
			break
		}
		if s.Completed+s.Skipped == len(cells) {
			break // sweep finished under fire before enough takeovers
		}
		cmd := spawn(fmt.Sprintf("victim-%d", spawns))
		delay := 150*time.Millisecond + time.Duration(r.Intn(350))*time.Millisecond
		time.Sleep(delay)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("SIGKILL worker: %v", err)
		}
		_ = cmd.Wait() // reap; exit status is necessarily non-zero
		kills++
	}
	if got := coord.Stats().Takeovers; got < wantTakeovers {
		t.Fatalf("only %d takeovers after %d SIGKILLs; the campaign never got its %d mid-cell kills",
			got, kills, wantTakeovers)
	}
	t.Logf("%d SIGKILLs, %d takeovers; letting survivors finish", kills, coord.Stats().Takeovers)

	// Survivors: two clean worker processes run the sweep to completion.
	finishers := []*exec.Cmd{spawn("survivor-0"), spawn("survivor-1")}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for _, cmd := range finishers {
		if err := cmd.Wait(); err != nil {
			t.Errorf("surviving worker exited with: %v", err)
		}
	}

	s := coord.Stats()
	t.Logf("final stats: %+v", s)
	if s.Failed != 0 {
		t.Fatalf("%d cells failed permanently", s.Failed)
	}

	// The chaos contract: byte-identical to the uninterrupted run, every
	// cell exactly once.
	assertSweepMatchesDirect(t, manifestPath, cells)
}
