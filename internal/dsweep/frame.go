package dsweep

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// The wire format: length-prefixed JSON frames. Every message is one
// envelope serialized as JSON, preceded by its byte length as a big-endian
// uint32. The connection is strictly request/response — the worker writes
// one frame and reads exactly one reply — so neither side ever interleaves
// writes and a dropped connection is always detected at the next exchange.

// ProtocolVersion is the handshake version. A coordinator refuses workers
// speaking a different version, so a mixed-build fleet fails fast instead
// of corrupting the sweep.
//
// Version history:
//
//	1 — initial lease protocol.
//	2 — CellSpec.Scheme. The bump is load-bearing: a v1 worker would drop
//	    the unknown JSON field, simulate the default scheme, and report the
//	    wrong result under the new cell's key — silent corruption, not an
//	    error.
const ProtocolVersion = 2

// maxFrame bounds a single frame. Checkpoints dominate frame size: a cache
// scheme snapshots one packed tag word per on-package block, which reaches
// ~50 MiB raw — ~70 MiB after the envelope's base64 expansion — so the
// bound sits well above that while still rejecting a corrupt length prefix
// immediately.
const maxFrame = 256 << 20

// Message types. The envelope is a single struct with a type tag rather
// than per-type payloads: the field set is small, and one shape keeps the
// strict request/response loop free of type-dispatch framing errors.
const (
	msgHello     = "hello"     // worker → coordinator: version handshake
	msgAcquire   = "acquire"   // worker → coordinator: request a cell lease
	msgLease     = "lease"     // coordinator → worker: a leased cell (+ resume checkpoint)
	msgWait      = "wait"      // coordinator → worker: nothing leasable now, retry later
	msgDone      = "done"      // coordinator → worker: sweep complete (or draining), exit
	msgHeartbeat = "heartbeat" // worker → coordinator: lease renewal + progress + checkpoint
	msgComplete  = "complete"  // worker → coordinator: finished cell result
	msgFailed    = "failed"    // worker → coordinator: cell attempt failed
	msgOK        = "ok"        // coordinator → worker: acknowledged
	msgRevoked   = "revoked"   // coordinator → worker: lease no longer held, abandon the cell
	msgError     = "error"     // either direction: fatal protocol error, close the connection
)

// envelope is the one wire message shape. Fields are populated per Type;
// json omitempty keeps frames compact.
type envelope struct {
	Type    string `json:"type"`
	Version int    `json:"version,omitempty"` // hello
	Worker  string `json:"worker,omitempty"`  // hello: worker name for logs/telemetry
	Error   string `json:"error,omitempty"`   // error, failed

	LeaseID uint64    `json:"lease_id,omitempty"` // lease, heartbeat, complete, failed
	Cell    *CellSpec `json:"cell,omitempty"`     // lease
	Key     string    `json:"key,omitempty"`      // lease: the manifest cell key

	// CheckpointEvery is the coordinator-chosen checkpoint cadence for the
	// leased cell; Resume is the last fsync'd checkpoint of a dead peer
	// (nil for a fresh start).
	CheckpointEvery uint64 `json:"checkpoint_every,omitempty"`
	Resume          []byte `json:"resume,omitempty"`

	Records    uint64 `json:"records,omitempty"`    // heartbeat, complete: records completed so far
	Checkpoint []byte `json:"checkpoint,omitempty"` // heartbeat: the checkpoint at Records

	// RTTMicros is the worker-measured round trip of its previous heartbeat
	// exchange on this lease, in microseconds (0 = first heartbeat, nothing
	// measured yet). The coordinator folds it into its RTT histogram and
	// journals it, giving the fleet timeline a network-health signal without
	// any clock synchronization between hosts.
	RTTMicros int64 `json:"rtt_us,omitempty"` // heartbeat

	Result json.RawMessage `json:"result,omitempty"` // complete: the cell's sim.Result JSON

	// BadResume marks a failure caused by the shipped resume checkpoint
	// (config-digest mismatch or corruption): the coordinator clears the
	// cell's checkpoint so the retry starts fresh instead of looping.
	BadResume bool `json:"bad_resume,omitempty"` // failed

	RetryMS int64 `json:"retry_ms,omitempty"` // wait: suggested base retry delay
}

// writeFrame serializes env as one length-prefixed frame.
func writeFrame(w io.Writer, env *envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("dsweep: encoding %s frame: %w", env.Type, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("dsweep: %s frame is %d bytes, exceeds the %d-byte limit", env.Type, len(body), maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf, uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

// readFrame reads one frame into env. An EOF before the first length byte
// surfaces as io.EOF (clean close); anything torn mid-frame is an error.
func readFrame(r io.Reader, env *envelope) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("dsweep: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return fmt.Errorf("dsweep: frame length %d out of range (1..%d)", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("dsweep: reading %d-byte frame body: %w", n, err)
	}
	*env = envelope{}
	if err := json.Unmarshal(body, env); err != nil {
		return fmt.Errorf("dsweep: decoding frame: %w", err)
	}
	if env.Type == "" {
		return fmt.Errorf("dsweep: frame missing type tag")
	}
	return nil
}
