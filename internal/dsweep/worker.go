package dsweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"time"

	"heteromem/internal/backoff"
	"heteromem/internal/flog"
	"heteromem/internal/sim"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// Worker defaults.
const (
	// DefaultDialAttempts bounds consecutive failed dials before the worker
	// gives up — covering both a coordinator that never started and one
	// that finished the sweep and exited while this worker was mid-cell.
	DefaultDialAttempts = 10

	dialBackoffBase = 50 * time.Millisecond
	dialBackoffCap  = 2 * time.Second
	waitBackoffBase = 50 * time.Millisecond
	waitBackoffCap  = time.Second
)

// WorkerConfig configures a sweep worker.
type WorkerConfig struct {
	// Name identifies the worker in coordinator logs and telemetry
	// ("" = the connection's remote address).
	Name string

	// Seed seeds the worker's retry jitter (0 = derived from Name), so a
	// herd of workers retrying the same coordinator decorrelates
	// deterministically.
	Seed uint64

	// DialAttempts bounds consecutive failed dials (0 = DefaultDialAttempts).
	DialAttempts int

	// Logf, when non-nil, receives worker lifecycle logs.
	Logf func(format string, args ...any)

	// Journal, when non-nil, receives this worker's structured lifecycle
	// records: dials and retries, lease acquisitions, checkpoint ships
	// (with the measured heartbeat round trip), and exit. Nil-safe.
	Journal *flog.Journal
}

// errRevoked aborts a cell run from inside its checkpoint sink when the
// coordinator answers a heartbeat with msgRevoked.
var errRevoked = errors.New("dsweep: lease revoked")

// errConn wraps transport failures so the worker can tell "reconnect and
// carry on" apart from "the cell itself failed".
type errConn struct{ err error }

func (e errConn) Error() string { return e.err.Error() }
func (e errConn) Unwrap() error { return e.err }

// RunWorker connects to the coordinator at addr and executes leased cells
// until the coordinator reports the sweep done (nil), ctx is cancelled
// (ctx.Err()), or the coordinator stays unreachable past the dial budget.
// Transient connection failures — including the coordinator restarting —
// are retried with decorrelated-jitter backoff; a cell interrupted by a
// connection drop is simply abandoned (the coordinator re-leases it, and
// this or another worker resumes it from its last checkpoint).
func RunWorker(ctx context.Context, addr string, cfg WorkerConfig) error {
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(cfg.Name))
		seed = h.Sum64() | 1
	}
	dialAttempts := cfg.DialAttempts
	if dialAttempts <= 0 {
		dialAttempts = DefaultDialAttempts
	}
	w := &worker{
		cfg:  cfg,
		wait: backoff.NewJitter(waitBackoffBase, waitBackoffCap, seed+1),
	}
	dial := backoff.NewJitter(dialBackoffBase, dialBackoffCap, seed)
	fails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		cfg.Journal.Emit(flog.Record{Event: flog.EvDial, Attempt: fails})
		conn, err := w.connect(ctx, addr)
		if err != nil {
			fails++
			cfg.Journal.Emit(flog.Record{Event: flog.EvDialFail, Level: flog.LevelWarn, Attempt: fails, Err: err.Error()})
			if fails >= dialAttempts {
				return fmt.Errorf("dsweep: worker %s: coordinator unreachable after %d attempts: %w", cfg.Name, fails, err)
			}
			if err := dial.Sleep(ctx); err != nil {
				return err
			}
			continue
		}
		fails = 0
		dial.Reset()
		err = w.serve(ctx, conn)
		conn.Close()
		if err == nil {
			cfg.Journal.Emit(flog.Record{Event: flog.EvWorkDone})
			return nil // sweep done
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		var ce errConn
		if !errors.As(err, &ce) {
			return err // protocol-fatal, not worth retrying
		}
		w.logf("dsweep: worker %s: connection lost (%v), reconnecting", cfg.Name, err)
		if err := dial.Sleep(ctx); err != nil {
			return err
		}
	}
}

type worker struct {
	cfg  WorkerConfig
	wait *backoff.Jitter
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// connect dials the coordinator and completes the versioned handshake.
func (w *worker) connect(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, &envelope{Type: msgHello, Version: ProtocolVersion, Worker: w.cfg.Name}); err != nil {
		conn.Close()
		return nil, err
	}
	var resp envelope
	if err := readFrame(conn, &resp); err != nil {
		conn.Close()
		return nil, err
	}
	if resp.Type != msgHello || resp.Version != ProtocolVersion {
		conn.Close()
		if resp.Type == msgError {
			return nil, fmt.Errorf("dsweep: handshake rejected: %s", resp.Error)
		}
		return nil, fmt.Errorf("dsweep: unexpected handshake reply %q", resp.Type)
	}
	return conn, nil
}

// exchange performs one strict request/response round trip.
func (w *worker) exchange(conn net.Conn, req *envelope) (envelope, error) {
	if err := writeFrame(conn, req); err != nil {
		return envelope{}, errConn{err}
	}
	var resp envelope
	if err := readFrame(conn, &resp); err != nil {
		return envelope{}, errConn{err}
	}
	return resp, nil
}

// serve runs the acquire/run loop on one connection. Returns nil when the
// coordinator says the sweep is done, errConn on transport failure (the
// caller reconnects), or a plain error on fatal protocol trouble.
func (w *worker) serve(ctx context.Context, conn net.Conn) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.exchange(conn, &envelope{Type: msgAcquire})
		if err != nil {
			return err
		}
		switch resp.Type {
		case msgDone:
			w.logf("dsweep: worker %s: sweep done", w.cfg.Name)
			return nil
		case msgWait:
			if err := w.wait.Sleep(ctx); err != nil {
				return err
			}
		case msgLease:
			w.wait.Reset()
			if resp.Cell == nil {
				return fmt.Errorf("dsweep: lease %d carries no cell", resp.LeaseID)
			}
			if err := w.runCell(ctx, conn, &resp); err != nil {
				return err
			}
		case msgError:
			return fmt.Errorf("dsweep: coordinator: %s", resp.Error)
		default:
			return fmt.Errorf("dsweep: unexpected %q reply to acquire", resp.Type)
		}
	}
}

// runCell simulates one leased cell, streaming each checkpoint back as a
// lease-renewing heartbeat, and reports the outcome. A nil return means the
// connection is still usable (the cell completed, failed cleanly, or was
// revoked); errConn means the transport died mid-cell and the run was
// abandoned for the coordinator to reassign.
func (w *worker) runCell(ctx context.Context, conn net.Conn, lease *envelope) error {
	spec := *lease.Cell
	w.logf("dsweep: worker %s: running %s (lease %d)", w.cfg.Name, spec.Label(), lease.LeaseID)
	w.cfg.Journal.Emit(flog.Record{Event: flog.EvAcquire, Cell: spec.Label(), Lease: lease.LeaseID})
	cfg, err := spec.Config()
	if err != nil {
		return w.reportFailure(conn, lease.LeaseID, err, false)
	}
	gen, err := workload.NewMemory(spec.Workload, spec.Seed)
	if err != nil {
		return w.reportFailure(conn, lease.LeaseID, err, false)
	}
	src := trace.NewLimit(gen, cfg.MaxRecords)
	cfg.CheckpointEvery = lease.CheckpointEvery
	cfg.Resume = lease.Resume
	if len(cfg.Resume) > 0 {
		// Vet the shipped resume point before simulating: a corrupt or
		// mismatched checkpoint is reported as BadResume so the coordinator
		// clears it and the retry starts fresh, instead of every attempt
		// tripping over the same snapshot until the cell fails permanently.
		info, ierr := sim.InspectCheckpoint(cfg.Resume)
		if ierr != nil {
			return w.reportFailure(conn, lease.LeaseID, fmt.Errorf("unusable resume checkpoint: %w", ierr), true)
		}
		if want := sim.ConfigDigest(cfg); info.ConfigDigest != want {
			return w.reportFailure(conn, lease.LeaseID,
				fmt.Errorf("resume checkpoint digest %016x does not match cell config %016x: %w",
					info.ConfigDigest, want, sim.ErrConfigMismatch), true)
		}
	}

	var connErr error
	revoked := false
	// Each heartbeat exchange is timed and the measured round trip rides
	// the NEXT heartbeat's frame (it cannot ride its own: the frame is
	// written before the reply arrives). The coordinator folds it into the
	// fleet RTT histogram without any cross-host clock agreement.
	var lastRTT int64
	cfg.CheckpointSink = func(data []byte, records uint64) error {
		sent := time.Now()
		resp, err := w.exchange(conn, &envelope{
			Type:       msgHeartbeat,
			LeaseID:    lease.LeaseID,
			Records:    records,
			Checkpoint: data,
			RTTMicros:  lastRTT,
		})
		if err != nil {
			connErr = err
			return err
		}
		lastRTT = time.Since(sent).Microseconds()
		w.cfg.Journal.Emit(flog.Record{Event: flog.EvShip, Level: flog.LevelDebug,
			Cell: spec.Label(), Lease: lease.LeaseID, Records: records,
			Bytes: len(data), RTTMicros: lastRTT})
		switch resp.Type {
		case msgOK:
			return nil
		case msgRevoked:
			revoked = true
			return errRevoked
		default:
			connErr = fmt.Errorf("dsweep: unexpected %q reply to heartbeat", resp.Type)
			return connErr
		}
	}

	res, runErr := sim.RunContext(ctx, src, cfg)
	switch {
	case connErr != nil:
		var ce errConn
		if errors.As(connErr, &ce) {
			return connErr
		}
		return errConn{connErr}
	case revoked:
		w.logf("dsweep: worker %s: lease %d revoked, abandoning %s", w.cfg.Name, lease.LeaseID, spec.Label())
		return nil
	case runErr != nil:
		if err := ctx.Err(); err != nil {
			// Cancelled mid-cell: report the abort if the conn still works,
			// so the coordinator re-leases immediately instead of waiting
			// for expiry, then surface the cancellation.
			_ = w.reportFailure(conn, lease.LeaseID, runErr, false)
			return err
		}
		badResume := errors.Is(runErr, sim.ErrConfigMismatch)
		return w.reportFailure(conn, lease.LeaseID, runErr, badResume)
	}

	raw, err := json.Marshal(res)
	if err != nil {
		return w.reportFailure(conn, lease.LeaseID, err, false)
	}
	resp, err := w.exchange(conn, &envelope{Type: msgComplete, LeaseID: lease.LeaseID, Records: res.Records, Result: raw})
	if err != nil {
		return err
	}
	switch resp.Type {
	case msgOK:
		return nil
	case msgRevoked:
		// Takeover race: someone else owns (or finished) the cell now; the
		// deterministic result we computed is identical anyway.
		w.logf("dsweep: worker %s: completion of %s superseded by takeover", w.cfg.Name, spec.Label())
		return nil
	case msgError:
		return fmt.Errorf("dsweep: coordinator: %s", resp.Error)
	default:
		return fmt.Errorf("dsweep: unexpected %q reply to complete", resp.Type)
	}
}

// reportFailure tells the coordinator the cell attempt failed.
func (w *worker) reportFailure(conn net.Conn, leaseID uint64, cause error, badResume bool) error {
	w.logf("dsweep: worker %s: lease %d failed: %v", w.cfg.Name, leaseID, cause)
	w.cfg.Journal.Emit(flog.Record{Event: flog.EvWorkFail, Level: flog.LevelWarn,
		Lease: leaseID, Err: cause.Error()})
	resp, err := w.exchange(conn, &envelope{
		Type:      msgFailed,
		LeaseID:   leaseID,
		Error:     cause.Error(),
		BadResume: badResume,
	})
	if err != nil {
		return err
	}
	switch resp.Type {
	case msgOK, msgRevoked:
		return nil
	default:
		return fmt.Errorf("dsweep: unexpected %q reply to failure report", resp.Type)
	}
}
