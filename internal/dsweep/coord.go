// Package dsweep is the fault-tolerant distributed sweep service: a
// coordinator owns the sweep's durable ledger (experiments.Manifest) and
// hands out cell leases to workers over TCP; workers simulate cells and
// stream back per-cell progress and checkpoints as lease-renewing
// heartbeats. A worker that dies — missed heartbeats or a dropped
// connection — loses its lease and the cell is reassigned, with the new
// worker resuming from the dead peer's last checkpoint. Results are
// deterministic (internal/sim's resume-equivalence contract), so a sweep
// that survives any number of worker crashes produces output byte-identical
// to an uninterrupted single-process sweep. See DESIGN.md section 12.
package dsweep

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"heteromem/internal/experiments"
	"heteromem/internal/flog"
	"heteromem/internal/obs"
	"heteromem/internal/sim"
)

// Coordinator defaults.
const (
	DefaultLeaseTTL    = 15 * time.Second
	DefaultMaxAttempts = 5

	// defaultCheckpointDivisor sets the per-cell checkpoint cadence when
	// CoordinatorConfig.CheckpointEvery is zero: records/divisor, so every
	// cell heartbeats a handful of times regardless of its budget.
	defaultCheckpointDivisor = 8

	// drainGrace is how long shutdown lets connected workers discover the
	// sweep is over (their next acquire answers msgDone) before their
	// connections are cut. Covers the worker-side wait backoff cap with
	// margin.
	drainGrace = 3 * time.Second
)

// CoordinatorConfig configures a sweep coordinator.
type CoordinatorConfig struct {
	// Cells is the sweep grid. Cells whose key is already in the manifest
	// are skipped (a restarted coordinator re-leases only incomplete work).
	Cells []CellSpec

	// Manifest is the durable ledger; every completed cell is fsync'd into
	// it before the completion is acknowledged. Required.
	Manifest *experiments.Manifest

	// Telemetry, when non-nil, receives sweep progress: planned cells,
	// lease lifecycles, and per-heartbeat record counts (the /progress
	// endpoint advances while cells are still executing remotely).
	Telemetry *experiments.Telemetry

	// LeaseTTL is how long a lease survives without a heartbeat
	// (0 = DefaultLeaseTTL). It must comfortably exceed the wall time
	// between a worker's checkpoints, which is what paces heartbeats.
	LeaseTTL time.Duration

	// CheckpointEvery is the per-cell checkpoint (and heartbeat) cadence in
	// records (0 = records/8, at least 1).
	CheckpointEvery uint64

	// SpillDir, when set, persists each cell's latest heartbeat checkpoint
	// (atomic write + fsync), so a restarted coordinator resumes takeover
	// cells mid-run instead of from scratch. Stale files whose config
	// digest no longer matches the cell are ignored.
	SpillDir string

	// MaxAttempts bounds how many times one cell may be leased before the
	// coordinator gives up on it (0 = DefaultMaxAttempts).
	MaxAttempts int

	// Logf, when non-nil, receives coordinator lifecycle logs.
	Logf func(format string, args ...any)

	// Journal, when non-nil, receives one structured record per lease
	// lifecycle event (planned, leased, heartbeat, completed, expired,
	// revoked, bad resume, duplicate, ...). The journal alone suffices to
	// reconstruct the sweep's cross-host history — hmreport -fleet builds
	// its timeline and post-mortem from it. Nil-safe: no journal, no cost.
	Journal *flog.Journal
}

// Stats summarizes a sweep's execution.
type Stats struct {
	Planned    int // incomplete cells at coordinator start
	Skipped    int // cells already complete in the manifest
	Completed  int // cells completed during this run
	Failed     int // cells abandoned after MaxAttempts
	Takeovers  int // leases revoked by expiry or connection drop
	Expiries   int // the subset of Takeovers caused by TTL expiry (missed heartbeats)
	Failures   int // worker-reported cell failures
	BadResumes int // failures where the shipped resume checkpoint was unusable
	Duplicates int // completions dropped by the manifest's first-write-wins
}

// cell lifecycle phases.
type cellPhase int

const (
	cellPending cellPhase = iota
	cellLeased
	cellDone
	cellFailed
)

// cellState is one sweep cell's coordinator-side state.
type cellState struct {
	spec  CellSpec
	key   string
	cfg   sim.Config
	label string

	phase    cellPhase
	attempts int
	lastErr  error

	// Lease bookkeeping, valid while phase == cellLeased.
	leaseID  uint64
	worker   string
	began    time.Time
	deadline time.Time

	// Takeover state: the latest heartbeat's progress and checkpoint. A
	// reassigned lease ships checkpoint back out as its resume point.
	records    uint64
	checkpoint []byte

	// lastBeat is when the current lease last heartbeated (zero until the
	// first one); feeds the heartbeat-interval histogram.
	lastBeat time.Time
}

// workerState is the coordinator's per-worker health ledger, keyed by the
// worker's self-reported name. It backs the /progress fleet table and the
// per-worker active-cell gauges on /metrics.
type workerState struct {
	cells    int       // leases currently held
	lastBeat time.Time // newest heartbeat (zero until the first)
	records  uint64    // records attributed to this worker (heartbeat deltas + completions)
	first    time.Time // first time the coordinator saw this worker
}

// Coordinator distributes a sweep's cells to workers under leases and owns
// the manifest ledger. One Coordinator serves one sweep; construct with
// NewCoordinator and drive with Serve.
type Coordinator struct {
	cfg CoordinatorConfig
	ttl time.Duration

	mu        sync.Mutex
	order     []*cellState
	byLease   map[uint64]*cellState
	nextLease uint64
	stats     Stats
	draining  bool
	resolved  chan struct{} // closed once every cell is done or failed
	isDone    bool

	// Fleet observability, all guarded by mu (the obs instruments are
	// single-threaded by design; the coordinator's lock serializes them).
	workers    map[string]*workerState
	hbInterval *obs.Histogram // ms between consecutive heartbeats on one lease
	hbRTT      *obs.Histogram // µs, worker-measured heartbeat round trip
	ckptBytes  *obs.Histogram // bytes per shipped checkpoint
}

// NewCoordinator validates the grid against the manifest and builds a
// coordinator. Cells already recorded in the manifest are marked complete;
// spilled checkpoints for incomplete cells are loaded as resume points.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Manifest == nil {
		return nil, errors.New("dsweep: coordinator needs a manifest")
	}
	if len(cfg.Cells) == 0 {
		return nil, errors.New("dsweep: empty sweep grid")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	c := &Coordinator{
		cfg:      cfg,
		ttl:      cfg.LeaseTTL,
		byLease:  map[uint64]*cellState{},
		resolved: make(chan struct{}),
		workers:  map[string]*workerState{},
		// Heartbeat intervals span one checkpoint (~ms) to a full TTL (~s);
		// RTTs span loopback (~µs) to congested WAN (~s); checkpoints run
		// from a few hundred bytes to the 64 MiB frame cap.
		hbInterval: obs.NewHistogram(obs.ExpBuckets(1, 18)),   // 1ms .. ~131s
		hbRTT:      obs.NewHistogram(obs.ExpBuckets(16, 18)),  // 16µs .. ~2.1s
		ckptBytes:  obs.NewHistogram(obs.ExpBuckets(256, 18)), // 256B .. 32MiB
	}
	seen := map[string]bool{}
	for _, spec := range cfg.Cells {
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		scfg, err := spec.Config()
		if err != nil {
			return nil, err
		}
		key := experiments.CellKey(spec.Workload, spec.Seed, scfg)
		if seen[key] {
			return nil, fmt.Errorf("dsweep: duplicate cell %s in grid", spec.Label())
		}
		seen[key] = true
		st := &cellState{spec: spec, key: key, cfg: scfg, label: spec.Label()}
		if _, done := cfg.Manifest.LookupRaw(key); done {
			st.phase = cellDone
			c.stats.Skipped++
			cfg.Journal.Emit(flog.Record{Event: flog.EvSkipped, Cell: st.label, Key: key})
		} else {
			c.stats.Planned++
			c.loadSpill(st)
			cfg.Journal.Emit(flog.Record{Event: flog.EvPlanned, Cell: st.label, Key: key, Records: st.records})
		}
		c.order = append(c.order, st)
	}
	cfg.Telemetry.AddPlanned(c.stats.Planned)
	// The coordinator's lease/heartbeat metrics and the per-worker health
	// table ride the same telemetry endpoint as the sweep totals, so one
	// -listen address observes the whole fleet.
	cfg.Telemetry.AddCollector(c.WriteMetrics)
	cfg.Telemetry.SetWorkerHealth(c.WorkerHealth)
	if c.stats.Planned == 0 {
		c.isDone = true
		close(c.resolved)
	}
	return c, nil
}

// Stats returns a snapshot of the sweep statistics.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// touchWorker returns w's health row, creating it on first sight. Callers
// hold c.mu.
func (c *Coordinator) touchWorker(name string) *workerState {
	ws, ok := c.workers[name]
	if !ok {
		ws = &workerState{first: time.Now()}
		c.workers[name] = ws
	}
	return ws
}

// WriteMetrics renders the coordinator's fleet metrics in Prometheus text
// exposition format: lease gauges and lifecycle counters, per-worker
// active-cell gauges, and the heartbeat-interval / heartbeat-RTT /
// checkpoint-size histograms. Registered with the sweep Telemetry as a
// /metrics collector, so hmsim -coordinate -listen serves it.
func (c *Coordinator) WriteMetrics(b *strings.Builder) {
	c.mu.Lock()
	stats := c.stats
	outstanding := len(c.byLease)
	type workerRow struct {
		name  string
		cells int
	}
	rows := make([]workerRow, 0, len(c.workers))
	for name, ws := range c.workers {
		rows = append(rows, workerRow{name, ws.cells})
	}
	hbi, rtt, ckpt := c.hbInterval.Snapshot(), c.hbRTT.Snapshot(), c.ckptBytes.Snapshot()
	c.mu.Unlock()

	fmt.Fprintf(b, "# TYPE dsweep_leases_outstanding gauge\ndsweep_leases_outstanding %d\n", outstanding)
	fmt.Fprintf(b, "# TYPE dsweep_cells_completed_total counter\ndsweep_cells_completed_total %d\n", stats.Completed)
	fmt.Fprintf(b, "# TYPE dsweep_cells_failed_total counter\ndsweep_cells_failed_total %d\n", stats.Failed)
	fmt.Fprintf(b, "# TYPE dsweep_lease_expiries_total counter\ndsweep_lease_expiries_total %d\n", stats.Expiries)
	fmt.Fprintf(b, "# TYPE dsweep_takeovers_total counter\ndsweep_takeovers_total %d\n", stats.Takeovers)
	fmt.Fprintf(b, "# TYPE dsweep_duplicates_total counter\ndsweep_duplicates_total %d\n", stats.Duplicates)
	fmt.Fprintf(b, "# TYPE dsweep_bad_resumes_total counter\ndsweep_bad_resumes_total %d\n", stats.BadResumes)
	fmt.Fprintf(b, "# TYPE dsweep_worker_failures_total counter\ndsweep_worker_failures_total %d\n", stats.Failures)
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	b.WriteString("# TYPE dsweep_worker_active_cells gauge\n")
	for _, r := range rows {
		fmt.Fprintf(b, "dsweep_worker_active_cells{worker=\"%s\"} %d\n", experiments.PromLabel(r.name), r.cells)
	}
	experiments.WritePromHistogram(b, "dsweep_heartbeat_interval_ms", hbi)
	experiments.WritePromHistogram(b, "dsweep_heartbeat_rtt_us", rtt)
	experiments.WritePromHistogram(b, "dsweep_checkpoint_bytes", ckpt)
}

// WorkerHealth assembles the /progress fleet health table: one row per
// worker the coordinator has seen, with its held-lease count, heartbeat
// staleness, and lifetime throughput.
func (c *Coordinator) WorkerHealth() []experiments.WorkerHealth {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]experiments.WorkerHealth, 0, len(c.workers))
	for name, ws := range c.workers {
		h := experiments.WorkerHealth{
			Name:                 name,
			Cells:                ws.cells,
			LastHeartbeatSeconds: -1,
			Records:              ws.records,
		}
		if !ws.lastBeat.IsZero() {
			h.LastHeartbeatSeconds = now.Sub(ws.lastBeat).Seconds()
		}
		if alive := now.Sub(ws.first).Seconds(); alive > 0 {
			h.RecordsPerSec = float64(ws.records) / alive
		}
		out = append(out, h)
	}
	return out
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// checkpointEvery picks the cell's checkpoint cadence.
func (c *Coordinator) checkpointEvery(st *cellState) uint64 {
	if c.cfg.CheckpointEvery > 0 {
		return c.cfg.CheckpointEvery
	}
	every := st.spec.Records / defaultCheckpointDivisor
	if every == 0 {
		every = 1
	}
	return every
}

// spillPath names a cell's checkpoint spill file. The key holds separator
// characters, so the name is its fnv-64a hash; a (cosmically unlikely)
// collision is still safe because the config digest inside the checkpoint
// is verified before use.
func (c *Coordinator) spillPath(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(c.cfg.SpillDir, fmt.Sprintf("%016x.ckpt", h.Sum64()))
}

// loadSpill restores a cell's resume point from the spill dir, if present
// and taken under the cell's exact configuration.
func (c *Coordinator) loadSpill(st *cellState) {
	if c.cfg.SpillDir == "" {
		return
	}
	data, err := os.ReadFile(c.spillPath(st.key))
	if err != nil {
		return
	}
	info, err := sim.InspectCheckpoint(data)
	if err != nil || info.ConfigDigest != sim.ConfigDigest(st.cfg) {
		c.logf("dsweep: ignoring stale spill checkpoint for %s", st.label)
		return
	}
	st.checkpoint = data
	st.records = info.Records
	c.logf("dsweep: %s resumes from spilled checkpoint at record %d", st.label, info.Records)
}

// writeSpill durably persists a cell's latest checkpoint: temp file, fsync,
// atomic rename. A crash mid-write leaves the previous spill intact.
func (c *Coordinator) writeSpill(st *cellState) {
	if c.cfg.SpillDir == "" || st.checkpoint == nil {
		return
	}
	path := c.spillPath(st.key)
	tmp, err := os.CreateTemp(c.cfg.SpillDir, filepath.Base(path)+".tmp-*")
	if err != nil {
		c.logf("dsweep: spill %s: %v", st.label, err)
		return
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(st.checkpoint); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		c.logf("dsweep: spill %s: %v", st.label, err)
		return
	}
	if err := tmp.Close(); err != nil {
		c.logf("dsweep: spill %s: %v", st.label, err)
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		c.logf("dsweep: spill %s: %v", st.label, err)
	}
}

// removeSpill drops a completed cell's spill file.
func (c *Coordinator) removeSpill(key string) {
	if c.cfg.SpillDir != "" {
		os.Remove(c.spillPath(key))
	}
}

// Serve accepts worker connections on ln and distributes the sweep until
// every cell is complete (nil), a cell exhausts its attempts (error), or
// ctx is cancelled. Cancellation drains gracefully: no new leases are
// granted, in-flight cells are allowed to finish (their leases can still
// expire if the worker dies), and Serve returns ctx.Err() once no lease is
// outstanding. Serve closes ln on return.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	defer ln.Close()

	// TTL scanner: expired leases are revoked so dead workers' cells are
	// reassigned. Runs during draining too, so a dead worker cannot wedge
	// the drain.
	scanDone := make(chan struct{})
	stopScan := make(chan struct{})
	go func() {
		defer close(scanDone)
		period := c.ttl / 4
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-stopScan:
				return
			case <-tick.C:
				c.expireLeases(time.Now())
			}
		}
	}()
	defer func() { close(stopScan); <-scanDone }()

	// Accept loop. Open connections are tracked so shutdown can first drain
	// them gracefully — handlers keep answering, so workers mid-exchange or
	// sleeping between acquires receive msgDone and exit on their own —
	// and then force-close stragglers (a hung worker must not wedge the
	// coordinator's exit).
	var (
		conns   sync.WaitGroup
		connMu  sync.Mutex
		openSet = map[net.Conn]bool{}
	)
	shutdown := func() {
		deadline := time.Now().Add(drainGrace)
		for time.Now().Before(deadline) {
			connMu.Lock()
			n := len(openSet)
			connMu.Unlock()
			if n == 0 {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		ln.Close()
		connMu.Lock()
		for conn := range openSet {
			conn.Close()
		}
		connMu.Unlock()
		conns.Wait()
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connMu.Lock()
			openSet[conn] = true
			connMu.Unlock()
			conns.Add(1)
			go func() {
				defer conns.Done()
				defer func() {
					connMu.Lock()
					delete(openSet, conn)
					connMu.Unlock()
					conn.Close()
				}()
				c.handleConn(conn)
			}()
		}
	}()

	select {
	case <-c.resolved:
		shutdown()
		return c.finalErr()
	case <-ctx.Done():
		c.mu.Lock()
		c.draining = true
		c.mu.Unlock()
		c.cfg.Journal.Emit(flog.Record{Event: flog.EvDrain})
		c.logf("dsweep: draining: no new leases, waiting for in-flight cells")
		// Poll until the outstanding leases clear (completion, failure, or
		// expiry) or everything resolves.
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-c.resolved:
			case <-tick.C:
			}
			c.mu.Lock()
			idle := len(c.byLease) == 0
			c.mu.Unlock()
			if idle {
				shutdown()
				return ctx.Err()
			}
		}
	}
}

// finalErr reports permanently failed cells, if any.
func (c *Coordinator) finalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var firstErr error
	failed := 0
	for _, st := range c.order {
		if st.phase == cellFailed {
			failed++
			if firstErr == nil {
				firstErr = st.lastErr
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("dsweep: %d cell(s) failed permanently; first: %w", failed, firstErr)
	}
	return nil
}

// expireLeases revokes every lease whose deadline has passed.
func (c *Coordinator) expireLeases(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, st := range c.byLease {
		if now.After(st.deadline) {
			c.revokeLocked(id, fmt.Errorf("dsweep: lease on %s expired (worker %s missed heartbeats)", st.label, st.worker), revokeExpired)
		}
	}
}

// revokeKind classifies why a lease is being torn down; it decides the
// stats bucket and the journal event.
type revokeKind int

const (
	revokeExpired    revokeKind = iota // TTL passed without a heartbeat: worker presumed dead
	revokeConnDrop                     // connection dropped mid-lease
	revokeWorkerFail                   // worker reported the attempt failed
)

// revokeLocked tears down one lease: the cell returns to the pending pool
// (resuming from its last checkpoint on the next grant) or, once its
// attempts are spent, fails permanently. Expiry and connection drops are
// crash-driven takeovers; worker-reported failures count separately.
func (c *Coordinator) revokeLocked(id uint64, cause error, kind revokeKind) {
	st, ok := c.byLease[id]
	if !ok {
		return
	}
	delete(c.byLease, id)
	st.leaseID = 0
	st.lastBeat = time.Time{}
	c.cfg.Telemetry.RunFinished(st.label, st.began, cause)
	if ws, ok := c.workers[st.worker]; ok && ws.cells > 0 {
		ws.cells--
	}
	ev := flog.Record{Level: flog.LevelWarn, Cell: st.label, Key: st.key,
		Worker: st.worker, Lease: id, Attempt: st.attempts + 1, Err: cause.Error()}
	switch kind {
	case revokeExpired:
		c.stats.Takeovers++
		c.stats.Expiries++
		ev.Event = flog.EvExpired
	case revokeConnDrop:
		c.stats.Takeovers++
		ev.Event = flog.EvRevoked
	case revokeWorkerFail:
		c.stats.Failures++
		ev.Event = flog.EvCellFail
	}
	c.cfg.Journal.Emit(ev)
	st.attempts++
	if st.attempts >= c.cfg.MaxAttempts {
		st.phase = cellFailed
		st.lastErr = cause
		c.stats.Failed++
		c.cfg.Journal.Emit(flog.Record{Event: flog.EvGiveUp, Level: flog.LevelError,
			Cell: st.label, Key: st.key, Attempt: st.attempts, Err: cause.Error()})
		c.logf("dsweep: giving up on %s after %d attempts: %v", st.label, st.attempts, cause)
		c.checkResolvedLocked()
		return
	}
	st.phase = cellPending
	c.logf("dsweep: released %s (attempt %d/%d): %v", st.label, st.attempts, c.cfg.MaxAttempts, cause)
}

// checkResolvedLocked closes the resolved channel once no cell can make
// further progress.
func (c *Coordinator) checkResolvedLocked() {
	if c.isDone {
		return
	}
	for _, st := range c.order {
		if st.phase == cellPending || st.phase == cellLeased {
			return
		}
	}
	c.isDone = true
	c.cfg.Journal.Emit(flog.Record{Event: flog.EvSweepDone, Records: uint64(c.stats.Completed)})
	close(c.resolved)
}

// acquire grants the next pending cell to a worker, or tells it to wait
// (cells in flight elsewhere) or exit (sweep resolved or draining).
func (c *Coordinator) acquire(worker string) envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining || c.isDone {
		return envelope{Type: msgDone}
	}
	for _, st := range c.order {
		if st.phase != cellPending {
			continue
		}
		c.nextLease++
		id := c.nextLease
		st.phase = cellLeased
		st.leaseID = id
		st.worker = worker
		st.deadline = time.Now().Add(c.ttl)
		st.began = c.cfg.Telemetry.RunStarted(st.label)
		c.byLease[id] = st
		c.touchWorker(worker).cells++
		c.cfg.Journal.Emit(flog.Record{Event: flog.EvLeased, Cell: st.label, Key: st.key,
			Worker: worker, Lease: id, Attempt: st.attempts + 1, Records: st.records})
		spec := st.spec
		env := envelope{
			Type:            msgLease,
			LeaseID:         id,
			Cell:            &spec,
			Key:             st.key,
			CheckpointEvery: c.checkpointEvery(st),
		}
		if st.checkpoint != nil {
			env.Resume = st.checkpoint
		}
		c.logf("dsweep: leased %s to %s (lease %d, resume at %d)", st.label, worker, id, st.records)
		return env
	}
	// Nothing pending: either all remaining cells are leased elsewhere
	// (wait — one may come back) or everything is resolved.
	for _, st := range c.order {
		if st.phase == cellLeased {
			retry := c.ttl.Milliseconds() / 4
			if retry < 50 {
				retry = 50
			}
			return envelope{Type: msgWait, RetryMS: retry}
		}
	}
	return envelope{Type: msgDone}
}

// heartbeat renews a lease and absorbs the worker's progress: the record
// delta feeds telemetry, the checkpoint becomes the cell's takeover
// resume point (spilled durably when a spill dir is configured), and the
// exchange feeds the interval/RTT/size histograms plus the journal.
// rttMicros is the worker-measured round trip of its previous heartbeat
// (0 = first one, nothing measured).
func (c *Coordinator) heartbeat(id uint64, records uint64, checkpoint []byte, rttMicros int64) envelope {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.byLease[id]
	if !ok {
		return envelope{Type: msgRevoked}
	}
	st.deadline = now.Add(c.ttl)
	since := st.began
	if !st.lastBeat.IsZero() {
		since = st.lastBeat
	}
	c.hbInterval.Observe(now.Sub(since).Milliseconds())
	st.lastBeat = now
	if rttMicros > 0 {
		c.hbRTT.Observe(rttMicros)
	}
	if len(checkpoint) > 0 {
		c.ckptBytes.Observe(int64(len(checkpoint)))
	}
	ws := c.touchWorker(st.worker)
	ws.lastBeat = now
	if records > st.records {
		c.cfg.Telemetry.AddRecords(records - st.records)
		ws.records += records - st.records
		st.records = records
	}
	if len(checkpoint) > 0 {
		st.checkpoint = checkpoint
		c.writeSpill(st)
	}
	c.cfg.Journal.Emit(flog.Record{Event: flog.EvHeartbeat, Level: flog.LevelDebug,
		Cell: st.label, Key: st.key, Worker: st.worker, Lease: id,
		Records: st.records, Bytes: len(checkpoint), RTTMicros: rttMicros})
	return envelope{Type: msgOK}
}

// complete records a finished cell in the manifest ledger (fsync'd before
// the acknowledgment) and retires its lease. A completion bearing a stale
// lease — the takeover race where a presumed-dead worker finished after
// all — is answered with msgRevoked and its result dropped; the ledger
// keeps exactly one line per cell either way, and results are
// deterministic, so nothing is lost.
func (c *Coordinator) complete(id uint64, records uint64, result []byte) envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.byLease[id]
	if !ok {
		return envelope{Type: msgRevoked}
	}
	stored, err := c.cfg.Manifest.StoreRaw(st.spec.Workload, st.spec.Seed, st.cfg, result)
	if err != nil {
		// The ledger write failed (disk trouble): the cell stays leased so
		// the worker can retry via lease expiry, and the error surfaces.
		c.logf("dsweep: recording %s: %v", st.label, err)
		return envelope{Type: msgError, Error: fmt.Sprintf("recording cell: %v", err)}
	}
	delete(c.byLease, id)
	st.phase = cellDone
	st.leaseID = 0
	st.checkpoint = nil
	c.cfg.Telemetry.RunFinished(st.label, st.began, nil)
	c.stats.Completed++
	ws := c.touchWorker(st.worker)
	if ws.cells > 0 {
		ws.cells--
	}
	if records > st.records {
		ws.records += records - st.records
		st.records = records
	}
	if !stored {
		c.stats.Duplicates++
		c.cfg.Journal.Emit(flog.Record{Event: flog.EvDuplicate, Level: flog.LevelWarn,
			Cell: st.label, Key: st.key, Worker: st.worker, Lease: id, Records: st.records})
	} else {
		c.cfg.Journal.Emit(flog.Record{Event: flog.EvCompleted,
			Cell: st.label, Key: st.key, Worker: st.worker, Lease: id, Records: st.records})
	}
	c.removeSpill(st.key)
	c.logf("dsweep: %s complete (worker %s)", st.label, st.worker)
	c.checkResolvedLocked()
	return envelope{Type: msgOK}
}

// fail processes a worker-reported cell failure. badResume clears the
// cell's checkpoint so the retry starts fresh instead of looping on an
// unresumable snapshot.
func (c *Coordinator) fail(id uint64, cause string, badResume bool) envelope {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.byLease[id]
	if !ok {
		return envelope{Type: msgRevoked}
	}
	if badResume {
		st.checkpoint = nil
		st.records = 0
		c.removeSpill(st.key)
		c.stats.BadResumes++
		c.cfg.Journal.Emit(flog.Record{Event: flog.EvBadResume, Level: flog.LevelWarn,
			Cell: st.label, Key: st.key, Worker: st.worker, Lease: id, Err: cause})
	}
	c.revokeLocked(id, fmt.Errorf("dsweep: worker %s: %s", st.worker, cause), revokeWorkerFail)
	return envelope{Type: msgOK}
}

// handleConn drives one worker connection: versioned handshake, then a
// strict request/response loop. Any read/write error — including the
// worker being SIGKILLed — revokes the lease the connection holds, making
// its cell immediately reassignable.
func (c *Coordinator) handleConn(conn net.Conn) {
	var hello envelope
	if err := readFrame(conn, &hello); err != nil {
		return
	}
	if hello.Type != msgHello || hello.Version != ProtocolVersion {
		_ = writeFrame(conn, &envelope{
			Type:  msgError,
			Error: fmt.Sprintf("protocol version mismatch: coordinator speaks %d", ProtocolVersion),
		})
		return
	}
	worker := hello.Worker
	if worker == "" {
		worker = conn.RemoteAddr().String()
	}
	if err := writeFrame(conn, &envelope{Type: msgHello, Version: ProtocolVersion}); err != nil {
		return
	}

	// The lease this connection currently holds (one at a time: the worker
	// is strictly sequential). Revoked on any connection error.
	var held uint64
	defer func() {
		if held != 0 {
			c.mu.Lock()
			c.revokeLocked(held, fmt.Errorf("dsweep: connection to worker %s dropped", worker), revokeConnDrop)
			c.mu.Unlock()
		}
	}()

	for {
		var req envelope
		if err := readFrame(conn, &req); err != nil {
			return
		}
		var resp envelope
		switch req.Type {
		case msgAcquire:
			resp = c.acquire(worker)
			if resp.Type == msgLease {
				held = resp.LeaseID
			}
		case msgHeartbeat:
			resp = c.heartbeat(req.LeaseID, req.Records, req.Checkpoint, req.RTTMicros)
			if resp.Type == msgRevoked && req.LeaseID == held {
				held = 0
			}
		case msgComplete:
			resp = c.complete(req.LeaseID, req.Records, req.Result)
			if resp.Type == msgRevoked {
				// A takeover race's late completion: the lease was superseded
				// and the (byte-identical, deterministic) result dropped.
				c.cfg.Journal.Emit(flog.Record{Event: flog.EvDuplicate, Level: flog.LevelWarn,
					Worker: worker, Lease: req.LeaseID, Records: req.Records})
			}
			if req.LeaseID == held && resp.Type != msgError {
				held = 0
			}
		case msgFailed:
			resp = c.fail(req.LeaseID, req.Error, req.BadResume)
			if req.LeaseID == held {
				held = 0
			}
		default:
			resp = envelope{Type: msgError, Error: fmt.Sprintf("unexpected %q frame", req.Type)}
		}
		if err := writeFrame(conn, &resp); err != nil {
			return
		}
		if resp.Type == msgError {
			return
		}
	}
}
