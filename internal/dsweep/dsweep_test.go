package dsweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"heteromem/internal/experiments"
	"heteromem/internal/sim"
	"heteromem/internal/trace"
	"heteromem/internal/workload"
)

// testCells is a small mixed grid: two migrating designs, a static
// baseline, and two cache-scheme cells, sized to finish in well under a
// second each.
func testCells() []CellSpec {
	return []CellSpec{
		{Workload: "pgbench", Seed: 1, Design: "live", Interval: 1000, Records: 60_000, Warmup: 10_000},
		{Workload: "indexer", Seed: 1, Design: "n-1", Interval: 1000, Records: 60_000, Warmup: 10_000},
		{Workload: "FT", Seed: 2, Design: "none", Records: 60_000},
		{Workload: "FT", Seed: 2, Design: "none", Scheme: "alloy", Records: 60_000},
		{Workload: "pgbench", Seed: 1, Design: "live", Interval: 1000, Scheme: "memcache:25", Records: 60_000},
	}
}

// directResult simulates spec uninterrupted in-process — no checkpointing,
// no distribution — and returns the marshaled Result: the byte-identity
// reference for everything the distributed path produces.
func directResult(t *testing.T, spec CellSpec) json.RawMessage {
	t.Helper()
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewMemory(spec.Workload, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(trace.NewLimit(gen, cfg.MaxRecords), cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func openManifest(t *testing.T, path string) *experiments.Manifest {
	t.Helper()
	m, err := experiments.OpenManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// startCoordinator builds a coordinator over a fresh loopback listener and
// serves it in the background. The returned wait func joins Serve.
func startCoordinator(t *testing.T, ctx context.Context, cfg CoordinatorConfig) (coord *Coordinator, addr string, wait func() error) {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- c.Serve(ctx, ln) }()
	return c, ln.Addr().String(), func() error {
		select {
		case err := <-errCh:
			return err
		case <-time.After(60 * time.Second):
			t.Fatal("coordinator did not finish")
			return nil
		}
	}
}

// assertSweepMatchesDirect checks the chaos contract's core: every cell's
// ledger entry is byte-identical to an uninterrupted in-process run, and
// the (reopened) manifest holds each cell exactly once.
func assertSweepMatchesDirect(t *testing.T, manifestPath string, cells []CellSpec) {
	t.Helper()
	m := openManifest(t, manifestPath)
	if m.Compacted() {
		t.Error("manifest needed compaction on reopen: duplicate or torn cell lines were written")
	}
	if m.Len() != len(cells) {
		t.Fatalf("manifest holds %d cells, want %d", m.Len(), len(cells))
	}
	for _, spec := range cells {
		key, err := spec.Key()
		if err != nil {
			t.Fatal(err)
		}
		got, ok := m.LookupRaw(key)
		if !ok {
			t.Fatalf("cell %s missing from manifest", spec.Label())
		}
		want := directResult(t, spec)
		if !bytes.Equal(got, want) {
			t.Errorf("cell %s: distributed result differs from uninterrupted run\n got: %.200s\nwant: %.200s",
				spec.Label(), got, want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := envelope{Type: msgLease, LeaseID: 7, Key: "k", CheckpointEvery: 9,
		Cell:   &CellSpec{Workload: "pgbench", Seed: 3, Design: "live", Interval: 1000, Records: 10},
		Resume: []byte{1, 2, 3}}
	if err := writeFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out envelope
	if err := readFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != msgLease || out.LeaseID != 7 || out.Cell == nil || out.Cell.Workload != "pgbench" ||
		!bytes.Equal(out.Resume, []byte{1, 2, 3}) || out.CheckpointEvery != 9 {
		t.Fatalf("round trip mangled the envelope: %+v", out)
	}

	// A frame length beyond the cap must be rejected before allocation.
	bad := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if err := readFrame(bytes.NewReader(bad), &out); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	// Torn body: header promises more than the stream holds.
	torn := []byte{0, 0, 0, 10, '{', '}'}
	if err := readFrame(bytes.NewReader(torn), &out); err == nil {
		t.Fatal("torn frame accepted")
	}
}

func TestCellSpecDeterministicKey(t *testing.T) {
	spec := CellSpec{Workload: "pgbench", Seed: 5, Design: "live", Interval: 1000, Records: 1000, Warmup: 100}
	k1, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := spec.Key()
	if k1 != k2 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}
	cfg, _ := spec.Config()
	if want := experiments.CellKey(spec.Workload, spec.Seed, cfg); k1 != want {
		t.Fatalf("key %s does not match the manifest key %s", k1, want)
	}
	// Design aliases must agree (n-1 vs n1), matching the CLI parser.
	a := CellSpec{Workload: "FT", Seed: 1, Design: "n-1", Interval: 500, Records: 10}
	b := a
	b.Design = "n1"
	ka, _ := a.Key()
	kb, _ := b.Key()
	if ka != kb {
		t.Fatal("design aliases n-1 and n1 produced different keys")
	}
}

func TestCellSpecValidate(t *testing.T) {
	bad := []CellSpec{
		{Workload: "no-such-workload", Seed: 1, Design: "none", Records: 10},
		{Workload: "pgbench", Seed: 1, Design: "warp", Records: 10},
		{Workload: "pgbench", Seed: 1, Design: "live", Records: 10}, // no interval
		{Workload: "pgbench", Seed: 1, Design: "none", Records: 0},
		{Workload: "pgbench", Seed: 1, Design: "none", Records: 10, Warmup: 10},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, spec)
		}
	}
	good := CellSpec{Workload: "pgbench", Seed: 1, Design: "live", Interval: 1000, Records: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

// TestCellSpecSchemeCompat pins the v1→v2 wire compatibility: a cell line
// written before the scheme field existed decodes to the default migration
// scheme and keys identically to an explicit "migrate", while scheme cells
// key differently and reject design combinations that cannot simulate.
func TestCellSpecSchemeCompat(t *testing.T) {
	var legacy CellSpec
	if err := json.Unmarshal(
		[]byte(`{"workload":"pgbench","seed":1,"design":"live","interval":1000,"records":10}`),
		&legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Scheme != "" {
		t.Fatalf("legacy cell decoded scheme %q", legacy.Scheme)
	}
	if err := legacy.Validate(); err != nil {
		t.Fatal(err)
	}
	explicit := legacy
	explicit.Scheme = "migrate"
	lk, err := legacy.Key()
	if err != nil {
		t.Fatal(err)
	}
	ek, err := explicit.Key()
	if err != nil {
		t.Fatal(err)
	}
	if lk != ek {
		t.Fatalf("absent scheme keys %s, explicit migrate keys %s", lk, ek)
	}

	static := CellSpec{Workload: "pgbench", Seed: 1, Design: "none", Records: 10}
	alloy := static
	alloy.Scheme = "alloy"
	if err := alloy.Validate(); err != nil {
		t.Fatal(err)
	}
	sk, err := static.Key()
	if err != nil {
		t.Fatal(err)
	}
	ak, err := alloy.Key()
	if err != nil {
		t.Fatal(err)
	}
	if sk == ak {
		t.Fatal("alloy cell keys identically to the static cell")
	}
	if alloy.Label() != "pgbench/none/alloy" {
		t.Fatalf("alloy label %q", alloy.Label())
	}

	bad := []CellSpec{
		{Workload: "pgbench", Seed: 1, Design: "live", Interval: 1000, Scheme: "alloy", Records: 10},
		{Workload: "pgbench", Seed: 1, Design: "none", Scheme: "memcache", Records: 10},
		{Workload: "pgbench", Seed: 1, Design: "none", Scheme: "bogus", Records: 10},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("bad scheme spec %d validated: %+v", i, spec)
		}
	}
}

func TestDistributedSweepMatchesDirect(t *testing.T) {
	cells := testCells()
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")
	tel := experiments.NewTelemetry()
	_, addr, wait := startCoordinator(t, context.Background(), CoordinatorConfig{
		Cells:     cells,
		Manifest:  openManifest(t, manifestPath),
		Telemetry: tel,
		SpillDir:  dir,
	})

	// Three workers race for three cells; all run in-process.
	workers := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			workers <- RunWorker(context.Background(), addr, WorkerConfig{Name: fmt.Sprintf("w%d", i)})
		}(i)
	}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := <-workers; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	assertSweepMatchesDirect(t, manifestPath, cells)

	// Telemetry saw the whole sweep: all cells planned, started, completed,
	// and every record accounted via heartbeats + completions.
	p := tel.Progress()
	if p.Planned != int64(len(cells)) || p.Completed != int64(len(cells)) || p.Failed != 0 {
		t.Errorf("telemetry progress planned=%d completed=%d failed=%d, want %d/%d/0",
			p.Planned, p.Completed, p.Failed, len(cells), len(cells))
	}
}

// stubWorker is a hand-driven protocol client for failure-injection tests.
type stubWorker struct {
	t    *testing.T
	conn net.Conn
}

func dialStub(t *testing.T, addr, name string) *stubWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	s := &stubWorker{t: t, conn: conn}
	reply := s.exchange(envelope{Type: msgHello, Version: ProtocolVersion, Worker: name})
	if reply.Type != msgHello {
		t.Fatalf("handshake reply %q", reply.Type)
	}
	return s
}

func (s *stubWorker) exchange(env envelope) envelope {
	s.t.Helper()
	if err := writeFrame(s.conn, &env); err != nil {
		s.t.Fatal(err)
	}
	var reply envelope
	if err := readFrame(s.conn, &reply); err != nil {
		s.t.Fatal(err)
	}
	return reply
}

func TestConnDropReassignsWithCheckpointResume(t *testing.T) {
	cell := CellSpec{Workload: "pgbench", Seed: 3, Design: "live", Interval: 1000, Records: 40_000}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")
	ctx := context.Background()
	coord, addr, wait := startCoordinator(t, ctx, CoordinatorConfig{
		Cells:    []CellSpec{cell},
		Manifest: openManifest(t, manifestPath),
		SpillDir: dir,
	})

	// Produce a genuine mid-run checkpoint for the cell, exactly as a
	// worker would have.
	cfg, err := cell.Config()
	if err != nil {
		t.Fatal(err)
	}
	var ckpt []byte
	cfg.CheckpointEvery = 10_000
	cfg.CheckpointSink = func(data []byte, records uint64) error {
		ckpt = append([]byte(nil), data...)
		return errors.New("stop after first checkpoint")
	}
	gen, _ := workload.NewMemory(cell.Workload, cell.Seed)
	if _, err := sim.Run(trace.NewLimit(gen, cfg.MaxRecords), cfg); err == nil {
		t.Fatal("sink error did not abort the checkpoint-producing run")
	}
	if ckpt == nil {
		t.Fatal("no checkpoint produced")
	}

	// A doomed worker takes the lease, heartbeats real progress, then its
	// process "dies": the connection drops without a farewell.
	stub := dialStub(t, addr, "doomed")
	lease := stub.exchange(envelope{Type: msgAcquire})
	if lease.Type != msgLease {
		t.Fatalf("acquire reply %q", lease.Type)
	}
	if ok := stub.exchange(envelope{Type: msgHeartbeat, LeaseID: lease.LeaseID, Records: 10_000, Checkpoint: ckpt}); ok.Type != msgOK {
		t.Fatalf("heartbeat reply %q", ok.Type)
	}
	stub.conn.Close()

	// The next worker to acquire must receive the dead peer's checkpoint as
	// its resume point.
	deadline := time.Now().Add(5 * time.Second)
	var release envelope
	for {
		stub2 := dialStub(t, addr, "observer")
		release = stub2.exchange(envelope{Type: msgAcquire})
		if release.Type == msgLease {
			// Hand the lease back by dropping the conn; a real worker takes
			// over below.
			stub2.conn.Close()
			break
		}
		stub2.conn.Close()
		if time.Now().After(deadline) {
			t.Fatalf("cell never re-leased after conn drop (last reply %q)", release.Type)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Equal(release.Resume, ckpt) {
		t.Fatalf("re-leased cell did not carry the dead peer's checkpoint (%d bytes vs %d)",
			len(release.Resume), len(ckpt))
	}

	// A real worker finishes the sweep; the result must match the
	// uninterrupted run byte for byte despite the takeover chain.
	if err := RunWorker(ctx, addr, WorkerConfig{Name: "finisher"}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if s := coord.Stats(); s.Takeovers < 2 {
		t.Errorf("stats takeovers = %d, want >= 2 (two dropped connections held leases)", s.Takeovers)
	}
	assertSweepMatchesDirect(t, manifestPath, []CellSpec{cell})
}

func TestLeaseExpiryReassignsSilentWorker(t *testing.T) {
	cell := CellSpec{Workload: "FT", Seed: 1, Design: "n", Interval: 1000, Records: 30_000}
	manifestPath := filepath.Join(t.TempDir(), "sweep.jsonl")
	coord, addr, wait := startCoordinator(t, context.Background(), CoordinatorConfig{
		Cells:    []CellSpec{cell},
		Manifest: openManifest(t, manifestPath),
		LeaseTTL: 150 * time.Millisecond,
	})

	// The silent worker takes the lease and never heartbeats — a hung
	// process rather than a dead one (the connection stays open).
	stub := dialStub(t, addr, "hung")
	lease := stub.exchange(envelope{Type: msgAcquire})
	if lease.Type != msgLease {
		t.Fatalf("acquire reply %q", lease.Type)
	}
	defer stub.conn.Close()

	if err := RunWorker(context.Background(), addr, WorkerConfig{Name: "rescuer"}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if s := coord.Stats(); s.Takeovers < 1 {
		t.Errorf("stats takeovers = %d, want >= 1 (lease must expire)", s.Takeovers)
	}
	assertSweepMatchesDirect(t, manifestPath, []CellSpec{cell})
}

func TestBadResumeCheckpointRecovers(t *testing.T) {
	cell := CellSpec{Workload: "MG", Seed: 4, Design: "live", Interval: 1000, Records: 30_000}
	manifestPath := filepath.Join(t.TempDir(), "sweep.jsonl")
	coord, addr, wait := startCoordinator(t, context.Background(), CoordinatorConfig{
		Cells:    []CellSpec{cell},
		Manifest: openManifest(t, manifestPath),
	})

	// Poison the cell's takeover state with garbage bytes, as if a dying
	// worker had streamed a corrupt checkpoint, then drop the connection.
	stub := dialStub(t, addr, "poisoner")
	lease := stub.exchange(envelope{Type: msgAcquire})
	if lease.Type != msgLease {
		t.Fatalf("acquire reply %q", lease.Type)
	}
	if ok := stub.exchange(envelope{Type: msgHeartbeat, LeaseID: lease.LeaseID, Records: 5, Checkpoint: []byte("not a checkpoint")}); ok.Type != msgOK {
		t.Fatalf("heartbeat reply %q", ok.Type)
	}
	stub.conn.Close()

	// The real worker must detect the unusable resume point, report it, and
	// complete the cell fresh on the retry — not fail permanently.
	if err := RunWorker(context.Background(), addr, WorkerConfig{Name: "healer"}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if s := coord.Stats(); s.Failures < 1 {
		t.Errorf("stats failures = %d, want >= 1 (the bad-resume report)", s.Failures)
	}
	assertSweepMatchesDirect(t, manifestPath, []CellSpec{cell})
}

func TestCoordinatorRestartReleasesOnlyIncomplete(t *testing.T) {
	cells := []CellSpec{
		{Workload: "pgbench", Seed: 1, Design: "live", Interval: 1000, Records: 30_000},
		{Workload: "indexer", Seed: 1, Design: "none", Records: 30_000},
	}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")

	// First life: sweep only the first cell to completion.
	{
		_, addr, wait := startCoordinator(t, context.Background(), CoordinatorConfig{
			Cells:    cells[:1],
			Manifest: openManifest(t, manifestPath),
		})
		if err := RunWorker(context.Background(), addr, WorkerConfig{Name: "w0"}); err != nil {
			t.Fatalf("worker: %v", err)
		}
		if err := wait(); err != nil {
			t.Fatalf("coordinator: %v", err)
		}
	}

	// Second life: the restarted coordinator replays the manifest and must
	// lease only the incomplete cell.
	coord, addr, wait := startCoordinator(t, context.Background(), CoordinatorConfig{
		Cells:    cells,
		Manifest: openManifest(t, manifestPath),
	})
	if s := coord.Stats(); s.Skipped != 1 || s.Planned != 1 {
		t.Fatalf("restart stats skipped=%d planned=%d, want 1/1", s.Skipped, s.Planned)
	}
	if err := RunWorker(context.Background(), addr, WorkerConfig{Name: "w1"}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	if s := coord.Stats(); s.Completed != 1 {
		t.Fatalf("restart completed %d cells, want exactly 1", s.Completed)
	}
	assertSweepMatchesDirect(t, manifestPath, cells)
}

func TestCoordinatorRestartResumesFromSpilledCheckpoint(t *testing.T) {
	cell := CellSpec{Workload: "pgbench", Seed: 9, Design: "live", Interval: 1000, Records: 40_000}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "sweep.jsonl")

	// First life: a worker heartbeats one real checkpoint (spilled to dir),
	// then the whole deployment dies.
	cfg, err := cell.Config()
	if err != nil {
		t.Fatal(err)
	}
	var ckpt []byte
	var ckptRecords uint64
	cfg.CheckpointEvery = 10_000
	cfg.CheckpointSink = func(data []byte, records uint64) error {
		ckpt, ckptRecords = append([]byte(nil), data...), records
		return errors.New("stop")
	}
	gen, _ := workload.NewMemory(cell.Workload, cell.Seed)
	_, _ = sim.Run(trace.NewLimit(gen, cfg.MaxRecords), cfg)
	if ckpt == nil {
		t.Fatal("no checkpoint produced")
	}
	{
		ctx, cancel := context.WithCancel(context.Background())
		_, addr, wait := startCoordinator(t, ctx, CoordinatorConfig{
			Cells:    []CellSpec{cell},
			Manifest: openManifest(t, manifestPath),
			SpillDir: dir,
		})
		stub := dialStub(t, addr, "firstlife")
		lease := stub.exchange(envelope{Type: msgAcquire})
		if lease.Type != msgLease {
			t.Fatalf("acquire reply %q", lease.Type)
		}
		if ok := stub.exchange(envelope{Type: msgHeartbeat, LeaseID: lease.LeaseID, Records: ckptRecords, Checkpoint: ckpt}); ok.Type != msgOK {
			t.Fatalf("heartbeat reply %q", ok.Type)
		}
		stub.conn.Close() // worker dies...
		cancel()          // ...and the coordinator is terminated
		if err := wait(); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled coordinator returned %v", err)
		}
	}

	// Second life: the spilled checkpoint must come back as the resume
	// point, and the sweep must still finish byte-identical.
	coord, addr, wait := startCoordinator(t, context.Background(), CoordinatorConfig{
		Cells:    []CellSpec{cell},
		Manifest: openManifest(t, manifestPath),
		SpillDir: dir,
	})
	stub := dialStub(t, addr, "inspector")
	lease := stub.exchange(envelope{Type: msgAcquire})
	if lease.Type != msgLease {
		t.Fatalf("acquire reply %q", lease.Type)
	}
	if !bytes.Equal(lease.Resume, ckpt) {
		t.Fatalf("restarted coordinator lost the spilled checkpoint (%d bytes vs %d)", len(lease.Resume), len(ckpt))
	}
	stub.conn.Close()

	if err := RunWorker(context.Background(), addr, WorkerConfig{Name: "secondlife"}); err != nil {
		t.Fatalf("worker: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	_ = coord
	assertSweepMatchesDirect(t, manifestPath, []CellSpec{cell})
}

func TestCoordinatorDrainsOnCancel(t *testing.T) {
	cell := CellSpec{Workload: "pgbench", Seed: 1, Design: "none", Records: 30_000}
	ctx, cancel := context.WithCancel(context.Background())
	_, addr, wait := startCoordinator(t, ctx, CoordinatorConfig{
		Cells:    []CellSpec{cell},
		Manifest: openManifest(t, filepath.Join(t.TempDir(), "m.jsonl")),
	})
	cancel()
	if err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("drained coordinator returned %v, want context.Canceled", err)
	}
	// Workers arriving after the drain are told the sweep is over.
	if err := RunWorker(context.Background(), addr, WorkerConfig{Name: "late", DialAttempts: 2}); err == nil {
		t.Log("late worker exited cleanly (listener already closed)") // both outcomes acceptable
	}
}

func TestWorkerRejectsVersionMismatch(t *testing.T) {
	_, addr, wait := startCoordinator(t, context.Background(), CoordinatorConfig{
		Cells:    []CellSpec{{Workload: "pgbench", Seed: 1, Design: "none", Records: 10}},
		Manifest: openManifest(t, filepath.Join(t.TempDir(), "m.jsonl")),
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, &envelope{Type: msgHello, Version: ProtocolVersion + 1, Worker: "future"}); err != nil {
		t.Fatal(err)
	}
	var reply envelope
	if err := readFrame(conn, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Type != msgError || !strings.Contains(reply.Error, "version") {
		t.Fatalf("version mismatch answered with %+v", reply)
	}
	// Finish the sweep so the coordinator goroutine exits.
	if err := RunWorker(context.Background(), addr, WorkerConfig{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkerGivesUpOnUnreachableCoordinator(t *testing.T) {
	// A port nothing listens on: bind, note the address, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	start := time.Now()
	err = RunWorker(context.Background(), addr, WorkerConfig{Name: "lost", DialAttempts: 3})
	if err == nil {
		t.Fatal("worker connected to a closed port")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("dial budget took %v, backoff cap not honored", time.Since(start))
	}
}

func TestNewCoordinatorRejectsBadGrids(t *testing.T) {
	m := openManifest(t, filepath.Join(t.TempDir(), "m.jsonl"))
	cases := []CoordinatorConfig{
		{Manifest: m}, // empty grid
		{Manifest: m, Cells: []CellSpec{{Workload: "pgbench", Seed: 1, Design: "bogus", Records: 10}}},
		{Manifest: m, Cells: []CellSpec{ // duplicate cell
			{Workload: "pgbench", Seed: 1, Design: "none", Records: 10},
			{Workload: "pgbench", Seed: 1, Design: "none", Records: 10},
		}},
		{Cells: []CellSpec{{Workload: "pgbench", Seed: 1, Design: "none", Records: 10}}}, // no manifest
	}
	for i, cfg := range cases {
		if _, err := NewCoordinator(cfg); err == nil {
			t.Errorf("case %d: bad coordinator config accepted", i)
		}
	}
}
