package dsweep

import (
	"fmt"
	"strings"

	"heteromem/internal/core"
	"heteromem/internal/experiments"
	"heteromem/internal/scheme"
	"heteromem/internal/sim"
	"heteromem/internal/workload"
)

// CellSpec names one sweep cell in wire-friendly form. sim.Config itself is
// not serializable (it carries the checkpoint sink), so the protocol ships
// the compact construction parameters instead; Config() rebuilds the full
// configuration deterministically, which is what makes the coordinator's and
// the worker's config digests agree — and with them the checkpoint
// resume-compatibility guard.
type CellSpec struct {
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	Design   string `json:"design"`              // n, n-1, live, or none
	PageSize uint64 `json:"page_size,omitempty"` // macro page bytes (0 = Table III default)
	Interval uint64 `json:"interval,omitempty"`  // swap interval (accesses per epoch)
	Records  uint64 `json:"records"`             // record budget (must be > 0)
	Warmup   uint64 `json:"warmup,omitempty"`    // records excluded from statistics
	Channels int    `json:"channels,omitempty"`  // controller shards (0 or 1 = single)

	// Scheme is the on-package capacity policy by name (internal/scheme):
	// absent or empty means the paper's migration scheme, so every pre-v2
	// cell file keeps its meaning. The field is why ProtocolVersion is 2: a
	// v1 worker would drop it on decode and silently compute the wrong cell.
	Scheme string `json:"scheme,omitempty"`
}

// parseDesign maps a CellSpec.Design value to a migration design.
func parseDesign(s string) (d core.Design, migrate, ok bool) {
	switch strings.ToLower(s) {
	case "n":
		return core.DesignN, true, true
	case "n-1", "n1":
		return core.DesignN1, true, true
	case "live":
		return core.DesignLive, true, true
	case "none", "static", "":
		return 0, false, true
	default:
		return 0, false, false
	}
}

// Validate rejects specs that could never simulate, so a bad cell fails at
// coordinator construction instead of burning through its lease attempts.
func (c CellSpec) Validate() error {
	if _, err := workload.NewMemory(c.Workload, c.Seed); err != nil {
		return err
	}
	if c.Records == 0 {
		return fmt.Errorf("dsweep: cell %s: zero record budget", c.Workload)
	}
	if c.Warmup >= c.Records {
		return fmt.Errorf("dsweep: cell %s: warmup %d >= records %d", c.Workload, c.Warmup, c.Records)
	}
	_, err := c.Config()
	return err
}

// Config deterministically reconstructs the cell's simulation configuration,
// mirroring the experiment drivers' construction (paper defaults, the
// OS-assisted feasibility split below 1 MB pages).
func (c CellSpec) Config() (sim.Config, error) {
	d, migrate, ok := parseDesign(c.Design)
	if !ok {
		return sim.Config{}, fmt.Errorf("dsweep: cell %s: unknown design %q", c.Workload, c.Design)
	}
	sp, err := scheme.Parse(c.Scheme)
	if err != nil {
		return sim.Config{}, fmt.Errorf("dsweep: cell %s: %w", c.Workload, err)
	}
	if sp.IsCache() && migrate {
		return sim.Config{}, fmt.Errorf("dsweep: cell %s: scheme %s takes no migration design (got %q)", c.Workload, sp, c.Design)
	}
	if sp.Kind == scheme.KindMemCache && !migrate {
		return sim.Config{}, fmt.Errorf("dsweep: cell %s: scheme %s needs a migration design", c.Workload, sp)
	}
	cfg := sim.Default()
	cfg.Scheme = sp
	if c.PageSize > 0 {
		cfg.Geometry.MacroPageSize = c.PageSize
	}
	if migrate {
		if c.Interval == 0 {
			return sim.Config{}, fmt.Errorf("dsweep: cell %s: design %q needs a swap interval", c.Workload, c.Design)
		}
		cfg.Migration = &core.Options{Design: d, SwapInterval: c.Interval}
	}
	cfg.OSAssisted = migrate && cfg.Geometry.MacroPageSize < experiments.PureHardwareMinPage
	cfg.MaxRecords = c.Records
	cfg.Warmup = c.Warmup
	cfg.Channels = c.Channels
	if err := cfg.Geometry.Validate(); err != nil {
		return sim.Config{}, fmt.Errorf("dsweep: cell %s: %w", c.Workload, err)
	}
	return cfg, nil
}

// Key returns the cell's manifest ledger key.
func (c CellSpec) Key() (string, error) {
	cfg, err := c.Config()
	if err != nil {
		return "", err
	}
	return experiments.CellKey(c.Workload, c.Seed, cfg), nil
}

// Label is the human-readable cell name used in telemetry and logs.
func (c CellSpec) Label() string {
	design := c.Design
	if design == "" {
		design = "none"
	}
	l := c.Workload + "/" + design
	if c.Scheme != "" && c.Scheme != "migrate" {
		l += "/" + c.Scheme
	}
	return l
}
