// Capacityplan: how much on-package DRAM does a workload need? Sweeps the
// on-package capacity (the paper's Fig. 15 sensitivity study) and reports
// the latency each provisioning level achieves with and without dynamic
// migration — the data a package architect needs to trade die area against
// memory performance.
//
// Usage: capacityplan [-workload indexer] [-records N]
package main

import (
	"flag"
	"fmt"
	"log"

	"heteromem"
)

func main() {
	name := flag.String("workload", "SPEC2006", "built-in workload to plan for")
	records := flag.Uint64("records", 1_200_000, "accesses per configuration")
	flag.Parse()
	warmup := *records / 2

	capacities := []uint64{128 * heteromem.MiB, 256 * heteromem.MiB, 512 * heteromem.MiB, 1 * heteromem.GiB}

	fmt.Printf("on-package capacity sensitivity for %s\n\n", *name)
	fmt.Printf("%-10s  %-22s  %-22s  %s\n", "capacity", "static latency (on%)", "migrated latency (on%)", "migration benefit")
	for _, capa := range capacities {
		static, err := run(heteromem.Config{
			OnPackageCapacity: capa,
			Warmup:            warmup,
		}, *name, *records)
		if err != nil {
			log.Fatal(err)
		}
		mig, err := run(heteromem.Config{
			OnPackageCapacity: capa,
			// Coarse pages promote whole megabytes per swap, so the
			// capacity bound is actually exercised within the run.
			MacroPageSize: 1 * heteromem.MiB,
			Migration:     heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: 10000},
			Warmup:        warmup,
		}, *name, *records)
		if err != nil {
			log.Fatal(err)
		}
		benefit := (static.MeanDRAMLatency - mig.MeanDRAMLatency) / static.MeanDRAMLatency * 100
		fmt.Printf("%-10s  %6.1f cyc (%4.1f%%)     %6.1f cyc (%4.1f%%)     %+.1f%%\n",
			fmtSize(capa),
			static.MeanDRAMLatency, static.Report.OnShare*100,
			mig.MeanDRAMLatency, mig.Report.OnShare*100,
			benefit)
	}
	fmt.Println("\nReading the table: if doubling the capacity no longer moves the migrated")
	fmt.Println("latency, the workload's hot set already fits — provision the smaller size.")
}

func run(cfg heteromem.Config, name string, records uint64) (heteromem.Result, error) {
	sys, err := heteromem.New(cfg)
	if err != nil {
		return heteromem.Result{}, err
	}
	return sys.RunWorkload(name, 1, records)
}

func fmtSize(b uint64) string {
	if b >= heteromem.GiB {
		return fmt.Sprintf("%dGB", b/heteromem.GiB)
	}
	return fmt.Sprintf("%dMB", b/heteromem.MiB)
}
