// Customworkload: model your own application with the pattern makers and
// evaluate whether a heterogeneous memory with migration would pay off.
// Here: a time-series database — a hot write head that advances through
// the store, Zipf-skewed queries over recent data, and background
// compaction scans.
package main

import (
	"fmt"
	"log"

	"heteromem"
)

func main() {
	spec := heteromem.WorkloadSpec{
		Name:        "tsdb",
		Description: "time-series store: advancing write head, recent-hot queries, compaction",
		MeanGap:     45,
		Cores:       4,
		Components: []heteromem.WorkloadComponent{
			{
				// The ingest head: sequential writes that slowly advance
				// through the store.
				Name: "write-head", Weight: 35, Region: 2 * heteromem.GiB, WriteFrac: 0.9,
				Make: heteromem.DriftMaker(heteromem.SeqMaker(64), 128*heteromem.MiB, 400000),
			},
			{
				// Queries: Zipf-skewed toward recent series.
				Name: "queries", Weight: 55, Region: 768 * heteromem.MiB, WriteFrac: 0.05,
				Make: heteromem.ZipfMaker(8192, 1.4, true),
			},
			{
				// Compaction: long scans, cache-hostile.
				Name: "compaction", Weight: 10, Region: 1 * heteromem.GiB, WriteFrac: 0.5,
				Make: heteromem.SeqMaker(64),
			},
		},
	}

	const records, warmup = 1_500_000, 1_000_000
	run := func(cfg heteromem.Config) heteromem.Result {
		cfg.Warmup = warmup
		sys, err := heteromem.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		gen, err := heteromem.NewGenerator(spec, 7)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(gen, records)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	static := run(heteromem.Config{})
	mig := run(heteromem.Config{
		MacroPageSize: 64 * heteromem.KiB,
		Migration:     heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: 1000},
		MeterPower:    true,
	})

	fmt.Printf("custom workload %q (%.1f GB footprint)\n\n", spec.Name, float64(spec.Footprint())/float64(heteromem.GiB))
	fmt.Printf("static mapping:  %.1f cycles, %4.1f%% on-package\n", static.MeanDRAMLatency, static.Report.OnShare*100)
	fmt.Printf("live migration:  %.1f cycles, %4.1f%% on-package\n", mig.MeanDRAMLatency, mig.Report.OnShare*100)
	fmt.Printf("effectiveness:   %.1f%%\n", heteromem.Effectiveness(static.MeanDRAMLatency, mig.MeanDRAMLatency, mig.Report.MeanCoreLat))
	fmt.Printf("memory power:    %.2fx an off-package-only system\n", mig.NormalizedPower)

	verdict := "worth it"
	if mig.MeanDRAMLatency > static.MeanDRAMLatency*0.9 {
		verdict = "marginal — consider a bigger on-package region or coarser pages"
	}
	fmt.Printf("\nverdict: %s\n", verdict)
}
