// Tieringstudy: find the operating point (migration granularity x swap
// interval x design) for a workload — the decision a system architect
// faces when provisioning the migration controller, and the study behind
// the paper's Figs. 11-14.
//
// Usage: tieringstudy [-workload SPECjbb] [-records N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"heteromem"
)

func main() {
	name := flag.String("workload", "SPECjbb", "built-in workload to study")
	records := flag.Uint64("records", 1_200_000, "accesses per configuration")
	flag.Parse()

	warmup := *records / 2
	static, err := run(heteromem.Config{Warmup: warmup}, *name, *records)
	if err != nil {
		log.Fatal(err)
	}

	granularities := []uint64{4 * heteromem.KiB, 64 * heteromem.KiB, 1 * heteromem.MiB, 4 * heteromem.MiB}
	intervals := []uint64{1000, 10000, 100000}
	designs := []heteromem.Design{heteromem.DesignN, heteromem.DesignN1, heteromem.DesignLive}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "config\tlatency\ton-package\tswaps\tvs static\n")
	fmt.Fprintf(w, "static mapping\t%.1f\t%4.1f%%\t-\t-\n",
		static.MeanDRAMLatency, static.Report.OnShare*100)

	type point struct {
		label string
		lat   float64
	}
	best := point{"static mapping", static.MeanDRAMLatency}
	for _, g := range granularities {
		for _, iv := range intervals {
			for _, d := range designs {
				cfg := heteromem.Config{
					MacroPageSize: g,
					Migration:     heteromem.Migration{Enabled: true, Design: d, SwapInterval: iv},
					Warmup:        warmup,
				}
				res, err := run(cfg, *name, *records)
				if err != nil {
					log.Fatal(err)
				}
				label := fmt.Sprintf("%s pages=%dK interval=%d", d, g/heteromem.KiB, iv)
				delta := (static.MeanDRAMLatency - res.MeanDRAMLatency) / static.MeanDRAMLatency * 100
				fmt.Fprintf(w, "%s\t%.1f\t%4.1f%%\t%d\t%+.1f%%\n",
					label, res.MeanDRAMLatency, res.Report.OnShare*100,
					res.Report.Migration.SwapsCompleted, delta)
				if res.MeanDRAMLatency < best.lat {
					best = point{label, res.MeanDRAMLatency}
				}
			}
		}
	}
	w.Flush()
	fmt.Printf("\noperating point for %s: %s (%.1f cycles)\n", *name, best.label, best.lat)
}

func run(cfg heteromem.Config, name string, records uint64) (heteromem.Result, error) {
	sys, err := heteromem.New(cfg)
	if err != nil {
		return heteromem.Result{}, err
	}
	return sys.RunWorkload(name, 1, records)
}
