// Convergence: watch the migration controller pull a workload's hot set
// on-package over time. Prints a per-window time series of latency,
// on-package share, and cumulative swaps — the picture behind choosing a
// warmup length for steady-state measurements.
//
// Usage: convergence [-workload SPEC2006] [-records N]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"heteromem"
)

func main() {
	name := flag.String("workload", "SPEC2006", "built-in workload")
	records := flag.Uint64("records", 2_000_000, "total accesses")
	flag.Parse()

	sys, err := heteromem.New(heteromem.Config{
		MacroPageSize: 256 * heteromem.KiB,
		Migration:     heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: 1000},
	})
	if err != nil {
		log.Fatal(err)
	}

	gen, err := heteromem.MemoryWorkload(*name)
	if err != nil {
		log.Fatal(err)
	}
	src, err := heteromem.NewGenerator(gen, 1)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.RunWindows(src, *records, *records/20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("migration convergence for %s (%d accesses, %d windows)\n\n",
		*name, *records, len(res.Windows))
	fmt.Printf("%-8s %-10s %-10s %-8s %s\n", "window", "latency", "on-pkg", "swaps", "")
	maxLat := 0.0
	for _, w := range res.Windows {
		if w.MeanLatency > maxLat {
			maxLat = w.MeanLatency
		}
	}
	for i, w := range res.Windows {
		bar := strings.Repeat("#", int(w.OnShare*30+0.5))
		fmt.Printf("%-8d %-10.1f %-10s %-8d %s\n",
			i, w.MeanLatency, fmt.Sprintf("%.1f%%", w.OnShare*100), w.SwapsSoFar, bar)
	}
	fmt.Printf("\nfinal mean DRAM latency: %.1f cycles, on-package share %.1f%%\n",
		res.MeanDRAMLatency, res.Report.OnShare*100)
}
