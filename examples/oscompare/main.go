// Oscompare: the paper's implementation split, measured. Pure-hardware
// migration is feasible only for macro pages >= 1 MB (the translation
// table's bits explode below that — Fig. 10); finer granularity needs
// OS-assisted management, which pays a user/kernel switch (~127 cycles)
// every monitoring epoch. This example walks the granularity axis showing
// which scheme the paper's feasibility rule selects, what the hardware
// table would cost, and the measured latency including the OS epoch tax —
// at two swap intervals, since the tax is per epoch.
//
// Usage: oscompare [-workload pgbench] [-records N]
package main

import (
	"flag"
	"fmt"
	"log"

	"heteromem"
)

func main() {
	name := flag.String("workload", "pgbench", "built-in workload")
	records := flag.Uint64("records", 1_000_000, "accesses per configuration")
	flag.Parse()
	warmup := *records / 2

	run := func(page, interval uint64) heteromem.Result {
		sys, err := heteromem.New(heteromem.Config{
			MacroPageSize: page,
			// New applies the paper's feasibility rule automatically:
			// OS-assisted below 1 MB, pure hardware at or above it.
			Migration: heteromem.Migration{Enabled: true, Design: heteromem.DesignLive, SwapInterval: interval},
			Warmup:    warmup,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.RunWorkload(*name, 1, *records)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Printf("migration management scheme across granularities, workload %s\n\n", *name)
	fmt.Printf("%-8s %-14s %-14s %-18s %-18s\n",
		"pages", "scheme", "HW table bits", "latency @ 1K int.", "latency @ 100K int.")
	for _, page := range []uint64{4 * heteromem.KiB, 64 * heteromem.KiB, 256 * heteromem.KiB, 1 * heteromem.MiB, 4 * heteromem.MiB} {
		bits := heteromem.HardwareBits(512*heteromem.MiB, page, 4*heteromem.KiB)
		scheme := "pure-HW"
		if page < 1*heteromem.MiB {
			scheme = "OS-assisted"
		}
		fast := run(page, 1000)
		slow := run(page, 100000)
		fmt.Printf("%-8s %-14s %-14d %-18s %-18s\n",
			fmtSize(page), scheme, bits,
			fmt.Sprintf("%.1f cyc", fast.MeanDRAMLatency),
			fmt.Sprintf("%.1f cyc", slow.MeanDRAMLatency))
	}
	fmt.Println("\nReading the table: the OS scheme's per-epoch user/kernel switch (~127")
	fmt.Println("cycles) is amortized over the swap interval — visible at 1K-access epochs,")
	fmt.Println("negligible at 100K. The hardware scheme's cost is the table itself, which")
	fmt.Println("is why the paper draws the feasibility line at 1 MB pages.")
}

func fmtSize(b uint64) string {
	if b >= heteromem.MiB {
		return fmt.Sprintf("%dMB", b/heteromem.MiB)
	}
	return fmt.Sprintf("%dKB", b/heteromem.KiB)
}
