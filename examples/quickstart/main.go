// Quickstart: build a heterogeneous memory system, run a built-in workload
// with and without dynamic migration, and report the paper's effectiveness
// metric.
package main

import (
	"fmt"
	"log"

	"heteromem"
)

func main() {
	const (
		workload = "pgbench"
		records  = 1_500_000
		warmup   = 1_000_000
	)

	// Static mapping: the lowest 512 MB of the 4 GB space live on-package.
	static, err := heteromem.New(heteromem.Config{Warmup: warmup})
	if err != nil {
		log.Fatal(err)
	}
	sres, err := static.RunWorkload(workload, 1, records)
	if err != nil {
		log.Fatal(err)
	}

	// Dynamic migration: live migration at 64 KB granularity, swapping the
	// hottest off-package page for the coldest on-package page every 1,000
	// memory accesses.
	migrated, err := heteromem.New(heteromem.Config{
		MacroPageSize: 64 * heteromem.KiB,
		Migration: heteromem.Migration{
			Enabled:      true,
			Design:       heteromem.DesignLive,
			SwapInterval: 1000,
		},
		Warmup: warmup,
	})
	if err != nil {
		log.Fatal(err)
	}
	mres, err := migrated.RunWorkload(workload, 1, records)
	if err != nil {
		log.Fatal(err)
	}

	eta := heteromem.Effectiveness(sres.MeanDRAMLatency, mres.MeanDRAMLatency, mres.Report.MeanCoreLat)
	fmt.Printf("workload: %s (%d accesses, %d warmup)\n", workload, records, warmup)
	fmt.Printf("static mapping:   %.1f cycles mean DRAM latency, %4.1f%% served on-package\n",
		sres.MeanDRAMLatency, sres.Report.OnShare*100)
	fmt.Printf("live migration:   %.1f cycles mean DRAM latency, %4.1f%% served on-package\n",
		mres.MeanDRAMLatency, mres.Report.OnShare*100)
	fmt.Printf("swaps completed:  %d (%.0f MB copied)\n",
		mres.Report.Migration.SwapsCompleted, float64(mres.Report.Migration.BytesCopied)/(1<<20))
	fmt.Printf("effectiveness:    %.1f%%\n", eta)
}
